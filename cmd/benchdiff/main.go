// Command benchdiff gates tracked benchmarks against a checked-in
// baseline. It reads Go benchmark results from `go test -json` streams
// (the BENCH artifact format) or from its own compact baseline lines,
// matches them by benchmark name, and fails loudly when a tracked line
// disappears or regresses beyond the allowed ratio.
//
// Machines differ in speed, so raw ns/op are never compared across
// files directly: the tool first computes the median current/baseline
// ratio over all shared tracked lines — the machine-speed scale — and
// flags only lines whose own ratio exceeds scale·max-ratio. A uniform
// slowdown (slower CI runner) cancels out; a single benchmark drifting
// away from its peers does not.
//
// Regenerate the baseline after a deliberate perf change:
//
//	go test -json -run '^$' -bench '<tracked>' -benchtime=10x . \
//	  | go run ./cmd/benchdiff -emit > BENCH_baseline.json
//
// Gate a PR run against it:
//
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json
//
// Alloc counts are compared exactly, not by ratio: a tracked benchmark
// whose baseline reports 0 allocs/op must still report 0 — the
// zero-allocation draw paths are a correctness property here, not a
// speed preference.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultTracked selects the draw-path micro benchmarks: large fixed-n
// samplers with stable per-op cost, safe to threshold even at smoke
// benchtimes. The figure/experiment benchmarks are deliberately
// untracked — their cost moves with experiment configs.
const defaultTracked = `^Benchmark(TopKTruncated|PLTopKTruncated|GMallowsTopKTruncated)/`

// result is one benchmark line, in both the compact baseline format and
// the internal representation of parsed test2json streams.
type result struct {
	Benchmark   string  `json:"Benchmark"`
	NsPerOp     float64 `json:"NsPerOp"`
	AllocsPerOp int64   `json:"AllocsPerOp"`
	hasAllocs   bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	baseline := flag.String("baseline", "", "checked-in baseline file (compact lines emitted by -emit)")
	current := flag.String("current", "", `bench artifact to gate ("-" or empty reads stdin); a go test -json stream or compact lines`)
	match := flag.String("match", defaultTracked, "regexp selecting the tracked benchmarks")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when a line's current/baseline ratio exceeds this after machine-speed normalization")
	emit := flag.Bool("emit", false, "emit compact baseline lines for the tracked benchmarks instead of diffing")
	flag.Parse()

	tracked, err := regexp.Compile(*match)
	if err != nil {
		log.Fatalf("-match: %v", err)
	}
	if *maxRatio <= 1 {
		log.Fatalf("-max-ratio = %v, want > 1", *maxRatio)
	}

	cur, err := readResults(*current, tracked)
	if err != nil {
		log.Fatal(err)
	}
	if *emit {
		names := sortedNames(cur)
		enc := json.NewEncoder(os.Stdout)
		for _, name := range names {
			r := cur[name]
			if err := enc.Encode(r); err != nil {
				log.Fatal(err)
			}
		}
		if len(names) == 0 {
			log.Fatal("no tracked benchmark lines in the input — wrong -match or empty stream?")
		}
		return
	}

	if *baseline == "" {
		log.Fatal("-baseline is required (or -emit to generate one)")
	}
	base, err := readResults(*baseline, tracked)
	if err != nil {
		log.Fatal(err)
	}
	if len(base) == 0 {
		log.Fatalf("baseline %s holds no tracked benchmark lines", *baseline)
	}

	// Machine-speed scale: the median current/baseline ratio over the
	// shared lines. With fewer than two shared lines there is no peer
	// group to normalize against; fall back to scale 1.
	var ratios []float64
	for name, b := range base {
		if c, ok := cur[name]; ok && b.NsPerOp > 0 {
			ratios = append(ratios, c.NsPerOp/b.NsPerOp)
		}
	}
	scale := 1.0
	if len(ratios) >= 2 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			scale = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
	}

	failed := false
	for _, name := range sortedNames(base) {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %s (baseline %.0f ns/op) — tracked line disappeared from the artifact\n", name, b.NsPerOp)
			failed = true
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		norm := ratio / scale
		status := "ok"
		if norm > *maxRatio {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s %s: %.0f -> %.0f ns/op (×%.2f raw, ×%.2f normalized)\n",
			status, name, b.NsPerOp, c.NsPerOp, ratio, norm)
		if b.hasAllocs && c.hasAllocs && b.AllocsPerOp == 0 && c.AllocsPerOp != 0 {
			fmt.Printf("ALLOCS    %s: %d allocs/op, baseline is allocation-free\n", name, c.AllocsPerOp)
			failed = true
		}
	}
	for _, name := range sortedNames(cur) {
		if _, ok := base[name]; !ok {
			fmt.Printf("new       %s: %.0f ns/op (not in baseline — regenerate with -emit to track it)\n", name, cur[name].NsPerOp)
		}
	}
	fmt.Printf("machine-speed scale ×%.2f over %d shared lines, threshold ×%.1f\n", scale, len(ratios), *maxRatio)
	if failed {
		log.Fatal("tracked benchmarks regressed or went missing")
	}
}

// benchLine matches a benchmark result in `go test` output, e.g.
//
//	BenchmarkTopKTruncated/truncated-4  20  533883 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// countsLine matches the counts half of a benchmark result when
// test2json splits the line into two output events (the name with a
// trailing tab, then iterations and measurements); the benchmark name
// then comes from the event's Test field.
var countsLine = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// readResults loads benchmark lines from path ("" or "-" is stdin),
// accepting a `go test -json` stream, raw `go test -bench` text, or the
// compact lines -emit writes, and keeps the tracked ones. A benchmark
// appearing twice keeps its last line.
func readResults(path string, tracked *regexp.Regexp) (map[string]result, error) {
	var rd io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	out := map[string]result{}
	record := func(name, ns, allocs string) {
		if !tracked.MatchString(name) {
			return
		}
		nsPerOp, err := strconv.ParseFloat(ns, 64)
		if err != nil {
			return
		}
		r := result{Benchmark: name, NsPerOp: nsPerOp}
		if allocs != "" {
			if a, err := strconv.ParseInt(allocs, 10, 64); err == nil {
				r.AllocsPerOp = a
				r.hasAllocs = true
			}
		}
		out[r.Benchmark] = r
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		text := line
		testName := ""
		if strings.HasPrefix(line, "{") {
			var obj struct {
				Action      string  `json:"Action"`
				Test        string  `json:"Test"`
				Output      string  `json:"Output"`
				Benchmark   string  `json:"Benchmark"`
				NsPerOp     float64 `json:"NsPerOp"`
				AllocsPerOp int64   `json:"AllocsPerOp"`
			}
			if err := json.Unmarshal([]byte(line), &obj); err != nil {
				continue // soak/noise lines with other shapes coexist in BENCH files
			}
			if obj.Benchmark != "" {
				// A compact baseline line carries the result directly.
				if tracked.MatchString(obj.Benchmark) {
					out[obj.Benchmark] = result{Benchmark: obj.Benchmark, NsPerOp: obj.NsPerOp, AllocsPerOp: obj.AllocsPerOp, hasAllocs: true}
				}
				continue
			}
			if obj.Action != "output" {
				continue
			}
			text = strings.TrimSuffix(obj.Output, "\n")
			testName = obj.Test
		}
		text = strings.TrimSpace(text)
		if m := benchLine.FindStringSubmatch(text); m != nil {
			record(m[1], m[2], m[3])
			continue
		}
		if testName == "" {
			continue
		}
		if m := countsLine.FindStringSubmatch(text); m != nil {
			record(testName, m[1], m[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func sortedNames(m map[string]result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
