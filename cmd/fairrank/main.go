// Command fairrank post-processes a ranking from a CSV file.
//
// The input CSV needs a header "id,score,group" (extra columns are kept
// as evaluation attributes). Example:
//
//	fairrank -in candidates.csv -algorithm mallows-best -theta 1 -samples 15
//
// The ranked candidates are written as CSV to stdout (or -out; -topk
// truncates to a shortlist), together with the ranking's self-audit on
// stderr: NDCG, draws evaluated, Kendall tau to the central ranking,
// the Two-Sided Infeasible Index and PPfair over the delivered prefix.
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"strings"

	fairrank "repro"
	"repro/internal/candidatecsv"
)

// algorithmNames and noiseNames enumerate the registry, so the usage
// text always matches what is actually rankable — algorithms registered
// by linked-in code appear without a CLI edit.
func algorithmNames() string {
	var names []string
	for _, a := range fairrank.Algorithms() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

func noiseNames() string {
	var names []string
	for _, n := range fairrank.Noises() {
		names = append(names, n.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairrank: ")
	in := flag.String("in", "-", `input CSV ("-" for stdin; header: id,score,group,...)`)
	out := flag.String("out", "-", `output CSV ("-" for stdout)`)
	algo := flag.String("algorithm", string(fairrank.DefaultAlgorithm),
		"one of: "+algorithmNames())
	noise := flag.String("noise", string(fairrank.NoiseMallows),
		"randomization mechanism of the sampling algorithms, one of: "+noiseNames())
	theta := flag.Float64("theta", 1, "noise dispersion θ (0 = uniform noise)")
	samples := flag.Int("samples", 15, "best-of-m sample count")
	sigma := flag.Float64("sigma", 0, "constraint noise σ for the attribute-aware algorithms")
	tol := flag.Float64("tol", 0.1, "proportional constraint tolerance (0 = exact proportionality)")
	weakK := flag.Int("k", 0, "weakly fair prefix length (0 = min(10, n))")
	central := flag.String("central", string(fairrank.CentralWeaklyFair),
		"Mallows central ranking: weak, fair, or score")
	criterion := flag.String("criterion", string(fairrank.CriterionNDCG),
		"Mallows best-of-m selection: ndcg or kt")
	topK := flag.Int("topk", 0, "truncate the output to the best topk candidates (0 = full ranking)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	candidates, extra, err := readFrom(*in)
	if err != nil {
		log.Fatal(err)
	}
	// The engine-shaping fields go into the Config; everything tunable
	// per request rides on the Request, where explicit zeros (θ = 0,
	// tolerance = 0) are real values rather than "use the default".
	ranker, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.Algorithm(*algo),
		Central:   fairrank.Central(*central),
		WeakK:     *weakK,
		Sigma:     *sigma,
	})
	if err != nil {
		log.Fatal(err)
	}
	req := fairrank.Request{
		Candidates: candidates,
		Theta:      theta,
		Samples:    samples,
		Criterion:  fairrank.Criterion(*criterion),
		Noise:      fairrank.Noise(*noise),
		Tolerance:  tol,
		Seed:       seed,
	}
	if *topK > 0 {
		req.TopK = topK
	}
	res, err := ranker.Do(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeTo(*out, res.Ranking, extra); err != nil {
		log.Fatal(err)
	}
	d := res.Diagnostics
	mech := string(d.Noise)
	if mech == "" {
		mech = "none" // deterministic algorithms draw nothing
	}
	log.Printf("algorithm=%s noise=%s theta=%g samples=%d ndcg=%.4f draws=%d kendall_tau_to_central=%d infeasible_index=%d ppfair=%.1f%% (top %d, tol=%g)",
		d.Algorithm, mech, d.Theta, d.Samples, d.NDCG, d.DrawsEvaluated, d.CentralKendallTau, d.InfeasibleIndex, d.PPfair, d.TopK, d.Tolerance)
}

func readFrom(path string) ([]fairrank.Candidate, []string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	return candidatecsv.Read(r)
}

func writeTo(path string, ranked []fairrank.Candidate, extra []string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return candidatecsv.Write(w, ranked, extra)
}
