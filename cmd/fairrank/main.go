// Command fairrank post-processes a ranking from a CSV file.
//
// The input CSV needs a header "id,score,group" (extra columns are kept
// as evaluation attributes). Example:
//
//	fairrank -in candidates.csv -algorithm mallows-best -theta 1 -samples 15
//
// The ranked candidates are written as CSV to stdout (or -out), together
// with a metrics summary on stderr: NDCG, Kendall tau to the score
// order, the Two-Sided Infeasible Index and PPfair.
package main

import (
	"flag"
	"io"
	"log"
	"os"

	fairrank "repro"
	"repro/internal/candidatecsv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairrank: ")
	in := flag.String("in", "-", `input CSV ("-" for stdin; header: id,score,group,...)`)
	out := flag.String("out", "-", `output CSV ("-" for stdout)`)
	algo := flag.String("algorithm", string(fairrank.AlgorithmMallowsBest),
		"one of: mallows, mallows-best, detconstsort, ipf, grbinary, ilp, score")
	theta := flag.Float64("theta", 1, "Mallows dispersion θ")
	samples := flag.Int("samples", 15, "Mallows best-of-m sample count")
	sigma := flag.Float64("sigma", 0, "constraint noise σ for the attribute-aware algorithms")
	tol := flag.Float64("tol", 0.1, "proportional constraint tolerance")
	weakK := flag.Int("k", 0, "weakly fair prefix length (0 = min(10, n))")
	central := flag.String("central", string(fairrank.CentralWeaklyFair),
		"Mallows central ranking: weak, fair, or score")
	criterion := flag.String("criterion", string(fairrank.CriterionNDCG),
		"Mallows best-of-m selection: ndcg or kt")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	candidates, extra, err := readFrom(*in)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := fairrank.Rank(candidates, fairrank.Config{
		Algorithm: fairrank.Algorithm(*algo),
		Central:   fairrank.Central(*central),
		Criterion: fairrank.Criterion(*criterion),
		Theta:     *theta,
		Samples:   *samples,
		Sigma:     *sigma,
		Tolerance: *tol,
		WeakK:     *weakK,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := writeTo(*out, ranked, extra); err != nil {
		log.Fatal(err)
	}
	report(candidates, ranked, *tol)
}

func readFrom(path string) ([]fairrank.Candidate, []string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	return candidatecsv.Read(r)
}

func writeTo(path string, ranked []fairrank.Candidate, extra []string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return candidatecsv.Write(w, ranked, extra)
}

func report(original, ranked []fairrank.Candidate, tol float64) {
	ndcg, err := fairrank.NDCG(ranked)
	if err != nil {
		log.Printf("ndcg: %v", err)
		return
	}
	byScore, err := fairrank.Rank(original, fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted})
	if err != nil {
		log.Printf("score order: %v", err)
		return
	}
	kt, err := fairrank.KendallTau(ranked, byScore)
	if err != nil {
		log.Printf("kendall tau: %v", err)
		return
	}
	ii, err := fairrank.InfeasibleIndex(ranked, tol)
	if err != nil {
		log.Printf("infeasible index: %v", err)
		return
	}
	pp, err := fairrank.PPfair(ranked, tol)
	if err != nil {
		log.Printf("ppfair: %v", err)
		return
	}
	log.Printf("ndcg=%.4f kendall_tau_to_score_order=%d infeasible_index=%d ppfair=%.1f%%", ndcg, kt, ii, pp)
}
