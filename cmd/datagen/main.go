// Command datagen emits synthetic datasets.
//
// By default it generates the German Credit dataset used by the
// experiments: 1000 records whose Age–Sex × Housing joint distribution
// matches the paper's Table I exactly, with lognormal credit amounts:
//
//	datagen [-seed 1] [-out german_credit.csv]
//
// With -scenario it instead materializes one synthetic ranking workload
// from a scenario corpus (internal/scenario) as a fairrank candidate
// CSV — the same corpora, loaded by the same resolver, that
// fairrank-soak replays over HTTP, so a soak workload can be inspected
// or piped straight into the fairrank CLI:
//
//	datagen -corpus soak -scenario soak-1k-gaussian | fairrank -algorithm mallows-best
//	datagen -corpus my-corpus.json -scenario g3-skewed
//	datagen -corpus soak -list
//
// With -out "-" (the default) the CSV goes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"repro/internal/candidatecsv"
	"repro/internal/dataset"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	seed := flag.Int64("seed", 1, "generator seed (German Credit mode only; scenario specs carry their own)")
	out := flag.String("out", "-", `output path ("-" for stdout)`)
	corpus := flag.String("corpus", "soak", "scenario corpus: a built-in name or a JSON corpus file (shared with fairrank-soak)")
	spec := flag.String("scenario", "", "emit this scenario from -corpus as a candidate CSV instead of German Credit")
	list := flag.Bool("list", false, "list the specs of -corpus and exit")
	flag.Parse()

	// -list is handled before -out is opened: opening (and truncating)
	// an output file a listing will never write to would destroy it.
	if *list {
		specs, err := scenario.LoadCorpus(*corpus)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range specs {
			fmt.Printf("%s\tn=%d groups=%d scores=%s ordering=%s\n",
				s.Name, s.N, s.Groups, orDefault(string(s.Scores), string(scenario.ScoresUniform)), orDefault(string(s.Ordering), string(scenario.OrderRandom)))
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *spec != "" {
		specs, err := scenario.LoadCorpus(*corpus)
		if err != nil {
			log.Fatal(err)
		}
		s, err := scenario.Find(specs, *spec)
		if err != nil {
			log.Fatal(err)
		}
		cands, err := s.Generate()
		if err != nil {
			log.Fatal(err)
		}
		var extra []string
		if s.ShadowGroups >= 2 {
			extra = []string{"shadow"}
		}
		if err := candidatecsv.WritePool(w, cands, extra); err != nil {
			log.Fatal(err)
		}
		return
	}

	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(*seed)))
	if err := ds.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
