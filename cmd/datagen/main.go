// Command datagen emits the synthetic German Credit dataset used by the
// experiments: 1000 records whose Age–Sex × Housing joint distribution
// matches the paper's Table I exactly, with lognormal credit amounts.
//
// Usage:
//
//	datagen [-seed 1] [-out german_credit.csv]
//
// With -out "-" (the default) the CSV goes to stdout.
package main

import (
	"flag"
	"log"
	"math/rand"
	"os"

	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "-", `output path ("-" for stdout)`)
	flag.Parse()

	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(*seed)))
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
}
