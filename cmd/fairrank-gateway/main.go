// Command fairrank-gateway shards fairrankd traffic across a fleet.
//
// It is the fleet scale-out layer of the serving stack: an HTTP
// reverse proxy that routes /v1/rank, /v1/rank/batch, and /v1/jobs/*
// traffic across N fairrankd backends by consistent hash on the
// ranker-cache key (algorithm, central, weak_k, sigma), so every
// request needing one engine configuration lands on the backend whose
// Mallows table cache is already hot for it.
//
//	fairrank-gateway -addr :9090 \
//	  -backends http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// Each backend runs a supervised probe lifecycle (probing → serving →
// degraded → draining) driven by periodic /healthz + /readyz polls;
// only serving backends receive new work. The readiness body's queue
// snapshot feeds the least-loaded fallback: when a shard's hash owner
// is unhealthy, requests reroute to the least-loaded serving backend
// instead of dogpiling one ring neighbor. Forwards retry with
// exponential backoff across distinct backends, honoring Retry-After
// on 429/503; job submissions are single-flight (never resent once
// they may have reached a backend) and accepted job IDs come back
// prefixed with the owning backend ("b2-job-000017"), so later polls
// and cancels route by the ID alone — no gateway-side affinity state.
//
// Gateway-served endpoints:
//
//	GET /v1/metrics  per-backend request/error/retry/inflight counters,
//	                 picker decisions, probe transitions, and a fleet
//	                 view aggregating the backends' engine metrics
//	GET /healthz     gateway liveness
//	GET /readyz      ready iff ≥ 1 backend is serving (fleet states in
//	                 the body)
//
// Everything else is forwarded. Equal-seed responses through the
// gateway are bit-identical to direct fairrankd responses.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fairrank-gateway: ")
	addr := flag.String("addr", ":9090", "listen address")
	backends := flag.String("backends", "", "comma-separated fairrankd base URLs (required)")
	picker := flag.String("picker", "hash", `backend selection policy: "hash" (consistent-hash primary, least-loaded fallback), "least-loaded", or "random"`)
	probeInterval := flag.Duration("probe-interval", 0, "backend health/readiness probe cadence (0 = default 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe round-trip budget (0 = default 1s)")
	healthyThreshold := flag.Int("healthy-threshold", 0, "consecutive probe successes promoting a backend to serving (0 = default 2)")
	unhealthyThreshold := flag.Int("unhealthy-threshold", 0, "consecutive failures degrading a serving backend (0 = default 2)")
	maxAttempts := flag.Int("max-attempts", 0, "forwarding attempts per request, first try included (0 = default 3)")
	retryBackoff := flag.Duration("retry-backoff", 0, "sleep before the first retry, doubling per retry (0 = default 50ms)")
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, "cap on backoff and honored Retry-After hints (0 = default 2s)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-attempt forwarding budget (0 = default 60s)")
	virtualNodes := flag.Int("virtual-nodes", 0, "hash-ring points per backend (0 = default 128)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight forwards on shutdown")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	cfg := gateway.Config{
		Backends:           urls,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		HealthyThreshold:   *healthyThreshold,
		UnhealthyThreshold: *unhealthyThreshold,
		MaxAttempts:        *maxAttempts,
		RetryBackoff:       *retryBackoff,
		RetryBackoffMax:    *retryBackoffMax,
		AttemptTimeout:     *attemptTimeout,
		VirtualNodes:       *virtualNodes,
	}
	switch *picker {
	case "hash":
		// New wires the default hash+least-loaded composite.
	case "least-loaded":
		cfg.Picker = gateway.LeastLoadedPicker{}
	case "random":
		cfg.Picker = gateway.NewRandomPicker(time.Now().UnixNano())
	default:
		log.Fatalf(`-picker = %q, want "hash", "least-loaded", or "random"`, *picker)
	}
	g, err := gateway.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	log.Printf("routing across %d backends with the %q picker", len(urls), *picker)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %s, draining (grace %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("drained")
	}
}
