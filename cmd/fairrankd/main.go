// Command fairrankd serves fair rankings over HTTP.
//
// It exposes the serving layer of internal/service:
//
//	POST /v1/rank        rank one candidate pool
//	POST /v1/rank/batch  rank many independent pools concurrently
//	GET  /v1/algorithms  introspect algorithms, centrals, criteria, defaults
//	GET  /healthz        liveness probe
//
// Example:
//
//	fairrankd -addr :8080 -workers 8
//
//	curl -s localhost:8080/v1/rank -d '{
//	  "candidates": [
//	    {"id": "ava",  "score": 5.2, "group": "f"},
//	    {"id": "emil", "score": 9.9, "group": "m"}
//	  ],
//	  "algorithm": "mallows-best", "theta": 1, "samples": 15,
//	  "top_k": 1, "seed": 42
//	}'
//
// theta, samples, criterion, noise, tolerance, top_k, and seed are
// per-request overrides; explicit zeros are honored (theta 0 = uniform
// noise, tolerance 0 = exact proportionality), and "noise" selects the
// randomization mechanism of the sampling algorithms ("mallows",
// "gmallows", "plackett-luce", plus anything registered). The servable
// algorithms are whatever the fairrank registry holds at startup — GET
// /v1/algorithms returns the generated catalog. Every response carries a
// "diagnostics" block: the resolved parameters plus a self-audit of the
// ranking (NDCG, draws evaluated, Kendall tau to the central ranking,
// PPfair and the Two-Sided Infeasible Index over the delivered prefix).
//
// Responses are deterministic: equal requests with equal seeds return
// equal rankings. The server amortizes work across requests through
// reusable ranking engines (see fairrank.Ranker) — requests differing
// only in per-request overrides share one engine, and the engine's
// Mallows tables are keyed by (pool size, θ) so mixed dispersions share
// the cache. Request contexts flow into the sampling loops: client
// disconnects and deadlines abort in-flight work between draws.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fairrankd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size bounding ranking concurrency (0 = GOMAXPROCS)")
	maxCandidates := flag.Int("max-candidates", 0, "largest accepted candidate pool (0 = default 100000)")
	maxBatch := flag.Int("max-batch", 0, "largest accepted batch (0 = default 1024)")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:       *workers,
		MaxCandidates: *maxCandidates,
		MaxBatch:      *maxBatch,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Enumerate the servable surface from the generated catalog, so the
	// startup log always matches GET /v1/algorithms.
	cat := service.Catalog()
	names := make([]string, len(cat.Algorithms))
	for i, a := range cat.Algorithms {
		names[i] = a.Name
	}
	noiseNames := make([]string, len(cat.Noises))
	for i, n := range cat.Noises {
		noiseNames[i] = n.Name
	}
	log.Printf("serving %d algorithms (%s) with %d noise mechanisms (%s)",
		len(names), strings.Join(names, ", "), len(noiseNames), strings.Join(noiseNames, ", "))

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("shutdown: %v", err)
		}
	}
}
