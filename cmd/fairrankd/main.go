// Command fairrankd serves fair rankings over HTTP.
//
// It exposes the layered serving pipeline of internal/service:
//
//	POST   /v1/rank        rank one candidate pool (sync)
//	POST   /v1/rank/batch  rank many independent pools concurrently (sync)
//	POST   /v1/jobs/rank   submit a batch as an async job (202 + job ID;
//	                       "webhook_url" subscribes to the completion event)
//	GET    /v1/jobs        list jobs (cursor paging, ?state= filters)
//	GET    /v1/jobs/{id}   poll job status/progress; items once done
//	DELETE /v1/jobs/{id}   cancel+delete an unfinished job (finished = 409)
//	GET    /v1/algorithms  introspect algorithms, centrals, criteria, defaults
//	GET    /v1/metrics     per-route, queue, job, and engine counters
//	GET    /healthz        liveness probe
//	GET    /readyz         readiness probe (503 while draining)
//
// Example:
//
//	fairrankd -addr :8080 -workers 8 -queue-depth 32 -job-ttl 10m
//
//	curl -s localhost:8080/v1/rank -d '{
//	  "candidates": [
//	    {"id": "ava",  "score": 5.2, "group": "f"},
//	    {"id": "emil", "score": 9.9, "group": "m"}
//	  ],
//	  "algorithm": "mallows-best", "theta": 1, "samples": 15,
//	  "top_k": 1, "seed": 42
//	}'
//
// theta, samples, criterion, noise, tolerance, top_k, and seed are
// per-request overrides; explicit zeros are honored (theta 0 = uniform
// noise, tolerance 0 = exact proportionality), and "noise" selects the
// randomization mechanism of the sampling algorithms ("mallows",
// "gmallows", "plackett-luce", plus anything registered). The servable
// algorithms are whatever the fairrank registry holds at startup — GET
// /v1/algorithms returns the generated catalog. Every response carries a
// "diagnostics" block: the resolved parameters plus a self-audit of the
// ranking (NDCG, draws evaluated, Kendall tau to the central ranking,
// PPfair and the Two-Sided Infeasible Index over the delivered prefix).
//
// Admission control: ranking work passes through a bounded admission
// queue (-queue-depth positions beyond the -workers executing, each
// sync request bounded by the -queue-wait budget). A saturated queue
// answers 429 with a Retry-After header immediately instead of letting
// backlog build. Async jobs absorb backpressure instead: items drain
// through the same queue without a budget, so soak-scale batches
// neither hold a connection open nor get dropped.
//
// Responses are deterministic: equal requests with equal seeds return
// equal rankings, sync or async. The server amortizes work across
// requests through reusable ranking engines (see fairrank.Ranker) —
// requests differing only in per-request overrides share one engine,
// and the engine's Mallows tables are keyed by (pool size, θ) so mixed
// dispersions share the cache. Request contexts flow into the sampling
// loops: client disconnects and deadlines abort in-flight work between
// draws.
//
// Durability: with -job-dir set, async jobs persist in a WAL-backed
// store — a restarted (or SIGKILLed) fairrankd replays the directory,
// re-enqueues every unfinished job, and re-runs only the items whose
// results are missing; per-item seeds make the resumed results
// bit-identical to an uninterrupted run. Completion-event webhooks are
// delivered at-least-once across restarts.
//
// On SIGINT/SIGTERM the server drains: readiness goes 503 (load
// balancers stop routing), new job submissions are rejected, running
// jobs and in-flight requests get a grace period to finish, then the
// HTTP server shuts down. Jobs still running past the grace period are
// handed back to the store as pending (with their progress) rather
// than cancelled, so a durable store resumes them on the next start.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fairrankd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size bounding ranking concurrency (0 = GOMAXPROCS)")
	maxCandidates := flag.Int("max-candidates", 0, "largest accepted candidate pool (0 = default 100000)")
	maxBatch := flag.Int("max-batch", 0, "largest accepted batch, sync or per job (0 = default 1024)")
	queueDepth := flag.Int("queue-depth", 0, "admission-queue positions beyond the executing workers; full queue answers 429 (0 = default 4×workers)")
	queueWait := flag.Duration("queue-wait", 0, "longest a sync request may wait for a worker slot before 429 (0 = default 10s)")
	maxJobs := flag.Int("max-jobs", 0, "largest number of stored async jobs (0 = default 64)")
	jobTTL := flag.Duration("job-ttl", 0, "how long finished jobs stay fetchable before eviction (0 = default 10m)")
	jobDir := flag.String("job-dir", "", "directory for the durable WAL-backed job store; empty keeps jobs in memory (restarts lose them)")
	webhookTimeout := flag.Duration("webhook-timeout", 0, "per-attempt budget of job completion-event deliveries (0 = default 5s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests and running jobs on shutdown")
	quiet := flag.Bool("quiet", false, "disable per-request access logging")
	flag.Parse()

	var access *slog.Logger
	if !*quiet {
		access = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv, err := service.NewServer(service.ServerConfig{
		Config: service.Config{
			Workers:        *workers,
			MaxCandidates:  *maxCandidates,
			MaxBatch:       *maxBatch,
			QueueDepth:     *queueDepth,
			QueueWait:      *queueWait,
			MaxJobs:        *maxJobs,
			JobTTL:         *jobTTL,
			WebhookTimeout: *webhookTimeout,
			AccessLog:      access,
		},
		Addr:         *addr,
		DrainTimeout: *drainTimeout,
		JobDir:       *jobDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jobDir != "" {
		log.Printf("durable job store at %s: %d unfinished jobs resumed", *jobDir, srv.Recovered())
	}

	// Enumerate the servable surface from the generated catalog, so the
	// startup log always matches GET /v1/algorithms.
	cat := service.Catalog()
	names := make([]string, len(cat.Algorithms))
	for i, a := range cat.Algorithms {
		names[i] = a.Name
	}
	noiseNames := make([]string, len(cat.Noises))
	for i, n := range cat.Noises {
		noiseNames[i] = n.Name
	}
	log.Printf("serving %d algorithms (%s) with %d noise mechanisms (%s)",
		len(names), strings.Join(names, ", "), len(noiseNames), strings.Join(noiseNames, ", "))

	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-srv.Err():
		log.Fatal(err)
	case sig := <-stop:
		// The Server runs the drain sequence in dependency order: stop
		// being routable (readyz 503, job submissions rejected), let
		// running jobs and in-flight requests finish inside the grace
		// period, shut the HTTP server down, then hard-cancel whatever
		// jobs remain.
		log.Printf("received %s, draining (grace %s)", sig, *drainTimeout)
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Printf("drain: %v", err)
		}
		log.Printf("drained")
	}
}
