package main

// The -noise-sweep mode: instead of load-testing a server, run the
// conformance degradation sweep in-process (internal/conformance
// .RunNoiseSweep) and append its curves to the BENCH stream — one
// "noise-curve" JSON line per algorithm × scenario × level, plus one
// "noise-summary" line for the run. The mode fails loudly (non-zero
// exit) on any sweep violation, including a noiseless anchor that is
// not bit-identical to the uncorrupted base sweep, so a CI step can
// gate on the exit code and grep the emitted lines.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"

	"repro/internal/conformance"
	"repro/internal/scenario"
)

// NoiseCurveLine is one degradation-curve point in the BENCH artifact
// format.
type NoiseCurveLine struct {
	Action             string  `json:"Action"` // "noise-curve"
	Corpus             string  `json:"Corpus"`
	Algorithm          string  `json:"Algorithm"`
	Noise              string  `json:"Noise,omitempty"`
	Scenario           string  `json:"Scenario"`
	Draws              int     `json:"Draws"`
	Flip               float64 `json:"Flip"`
	Missing            float64 `json:"Missing"`
	MeanPPfairObserved float64 `json:"MeanPPfairObserved"`
	MeanPPfairTrue     float64 `json:"MeanPPfairTrue"`
	MeanExpectedPPfair float64 `json:"MeanExpectedPPfair"`
	MeanNDCG           float64 `json:"MeanNDCG"`
}

// NoiseSummaryLine is the run-level degradation-sweep result.
type NoiseSummaryLine struct {
	Action     string `json:"Action"` // "noise-summary"
	Corpus     string `json:"Corpus"`
	Algorithms int    `json:"Algorithms"`
	Curves     int    `json:"Curves"`
	Levels     int    `json:"Levels"`
	Draws      int    `json:"Draws"`
	// ZeroNoiseIdentical reports that every curve's noiseless anchor
	// reproduced the uncorrupted base sweep bit for bit; a false value
	// never reaches the artifact — the run fails first.
	ZeroNoiseIdentical bool `json:"ZeroNoiseIdentical"`
	Violations         int  `json:"Violations"`
}

// runNoiseSweepMode executes the sweep over the loaded corpus and
// appends its lines to w. It returns an error on setup failure, any
// violation, or a lost zero-noise identity.
func runNoiseSweepMode(w io.Writer, specs []scenario.Spec, corpus string, draws int, seed int64) error {
	rep, err := conformance.RunNoiseSweep(context.Background(), conformance.Config{
		Draws:     draws,
		Seed:      seed,
		Scenarios: specs,
	}, nil)
	if err != nil {
		return err
	}
	log.Print(rep.Summary())
	for _, v := range rep.Violations {
		log.Printf("violation: %s", v)
	}
	if rep.Failed() {
		return fmt.Errorf("noise sweep found %d violations", len(rep.Violations))
	}
	algos := map[string]bool{}
	identical := true
	enc := json.NewEncoder(w)
	for _, c := range rep.Curves {
		algos[c.Algorithm] = true
		identical = identical && c.ZeroNoiseIdentical
		for _, pt := range c.Points {
			line := NoiseCurveLine{
				Action:             "noise-curve",
				Corpus:             corpus,
				Algorithm:          c.Algorithm,
				Noise:              c.Noise,
				Scenario:           c.Scenario,
				Draws:              c.Draws,
				Flip:               pt.Flip,
				Missing:            pt.Missing,
				MeanPPfairObserved: pt.MeanPPfairObserved,
				MeanPPfairTrue:     pt.MeanPPfairTrue,
				MeanExpectedPPfair: pt.MeanExpectedPPfair,
				MeanNDCG:           pt.MeanNDCG,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	if !identical {
		// Unreachable while the identity check reports violations, but
		// the artifact's headline claim is re-derived, not assumed.
		return fmt.Errorf("noise sweep lost zero-noise identity without a violation — report inconsistent")
	}
	return enc.Encode(NoiseSummaryLine{
		Action:             "noise-summary",
		Corpus:             corpus,
		Algorithms:         len(algos),
		Curves:             len(rep.Curves),
		Levels:             len(rep.Levels),
		Draws:              rep.Draws,
		ZeroNoiseIdentical: identical,
		Violations:         len(rep.Violations),
	})
}
