// Command fairrank-soak load-tests a fairrankd server by replaying
// synthetic scenario corpora (internal/scenario) against it: concurrent
// clients mixing the single and batch ranking endpoints, with optional
// client-cancellation injection, recording latency percentiles and
// throughput as JSON lines in the BENCH artifact format.
//
// Point it at a running server:
//
//	fairrank-soak -addr http://localhost:8080 -corpus soak -requests 2000 -concurrency 16
//
// or let it spawn the serving stack in-process (no orchestration — the
// CI smoke path):
//
//	fairrank-soak -spawn -corpus smoke -requests 200 -out BENCH_pr.json
//
// -mode jobs exercises the async job pipeline instead of the sync
// endpoints: each logical request submits a batch job
// (POST /v1/jobs/rank), polls GET /v1/jobs/{id} until it is done,
// verifies every item, and verifies that deleting the finished job is
// refused with 409 (results belong to the TTL sweeper, not DELETE) —
// the recorded latency is the submit→results end-to-end time. With
// -cancel, a fraction of jobs is cancelled via DELETE right after
// submission and verified gone.
//
// -restart-drill is the durability smoke: the serving stack runs as a
// real child fairrankd process on a durable -job-dir, gets SIGKILL'd a
// third of the way through the run, and is restarted over the same
// store. The clients ride over the dead window on transport retries,
// the restarted server must resume the interrupted jobs (its
// /v1/metrics jobs.recovered counter is checked), and every job must
// still finish with verified items — JobsRecovered in the summary
// line records that the whole drill held. Requires -mode jobs and
// -fairrankd-bin:
//
//	fairrank-soak -mode jobs -restart-drill -fairrankd-bin ./fairrankd \
//	  -corpus smoke -requests 120 -out BENCH_pr.json
//
// -corpus accepts a built-in corpus name (see internal/scenario) or a
// JSON corpus file, the same loader cmd/datagen uses. Requests are
// deterministic: request i carries seed -seed+i, so a soak run is
// replayable and two runs against correct servers rank identically.
//
// With -spawn the run ends with a reconciliation pass: the client's own
// per-endpoint request counts are checked against the server's
// GET /v1/metrics route counters, so the observability layer is load-
// tested too, not just read.
//
// -fleet N soaks the fleet topology instead: N in-process fairrankd
// backends behind an in-process fairrank-gateway, with the clients
// pointed at the gateway. -kill-backend abruptly stops the busiest
// backend a third of the way through the run; the gateway's
// retry/failover must absorb the kill with zero client-visible
// failures, and the run ends by reconciling the gateway's aggregated
// /v1/metrics against the client's ledger (FleetReconciled in the
// summary line):
//
//	fairrank-soak -fleet 3 -kill-backend -corpus smoke -requests 300 -out BENCH_pr.json
//
// -noise-sweep replaces load testing entirely: the conformance
// degradation sweep (internal/conformance.RunNoiseSweep) runs
// in-process over the loaded corpus, measuring every registry
// algorithm's fairness and quality as attribute noise rises, and its
// curves are appended as "noise-curve" lines plus one "noise-summary"
// line. Any violation — including a noiseless anchor that is not
// bit-identical to the uncorrupted base sweep — fails the run:
//
//	fairrank-soak -noise-sweep -corpus noise -noise-draws 40 -out BENCH_pr.json
//
// Output is appended to -out as one JSON object per line with
// "Action": "soak" (one line per endpoint) and "Action": "soak-summary"
// (one line per run), so the lines coexist with a `go test -json`
// stream in the same BENCH file.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fairrank "repro"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairrank-soak: ")
	addr := flag.String("addr", "http://localhost:8080", "base URL of the fairrankd server under test")
	spawn := flag.Bool("spawn", false, "serve in-process instead of targeting -addr (self-contained smoke runs)")
	fleet := flag.Int("fleet", 0, "spawn an in-process gateway over this many fairrankd backends and soak through it (overrides -addr; exclusive with -spawn)")
	killBackend := flag.Bool("kill-backend", false, "with -fleet, abruptly kill the busiest backend a third of the way through the run (failover injection; -mode sync only)")
	corpus := flag.String("corpus", "soak", "built-in corpus name or JSON corpus file (shared with datagen); see internal/scenario")
	mode := flag.String("mode", "sync", `"sync" replays /v1/rank(+batch); "jobs" submits async jobs and polls them to completion`)
	requests := flag.Int("requests", 200, "total requests to send")
	duration := flag.Duration("duration", 0, "if > 0, keep sending until this much time has passed (overrides -requests)")
	concurrency := flag.Int("concurrency", 8, "concurrent client goroutines")
	algorithms := flag.String("algorithms", string(service.Catalog().Defaults.Algorithm), "comma-separated algorithms to rotate through")
	noise := flag.String("noise", "", "noise mechanism to request (empty uses the server default; algorithms that pin their own mechanism ignore it)")
	topK := flag.Int("topk", 10, "top_k per request (bounds response size on large pools); 0 requests full rankings")
	topkFrac := flag.Float64("topk-frac", 1, "fraction of requests carrying -topk; the rest request full rankings, so a mixed run exercises both draw paths")
	batchEvery := flag.Int("batch-every", 10, "every k-th request goes to /v1/rank/batch (0 disables batches)")
	batchSize := flag.Int("batch-size", 4, "entries per batch request")
	restartDrill := flag.Bool("restart-drill", false, "spawn fairrankd as a child process on a durable job dir, SIGKILL it a third of the way through the run, restart it over the same store, and require the resumed jobs to finish (needs -mode jobs and -fairrankd-bin)")
	fairrankdBin := flag.String("fairrankd-bin", "", "path to the fairrankd binary -restart-drill spawns")
	jobDir := flag.String("job-dir", "", "durable job directory for -restart-drill (default: a fresh temp dir, removed afterwards)")
	cancelFrac := flag.Float64("cancel", 0, "fraction of requests cancelled client-side mid-flight (injection)")
	cancelAfter := flag.Duration("cancel-after", 2*time.Millisecond, "cancellation delay for injected cancels")
	maxN := flag.Int("max-n", 0, "skip corpus specs with more than this many candidates (0 = no cap)")
	noiseSweep := flag.Bool("noise-sweep", false, "run the conformance degradation sweep in-process instead of load-testing: per-algorithm fairness/quality curves over the attribute-noise grid, appended as \"noise-curve\" lines (pair with -corpus noise)")
	noiseDraws := flag.Int("noise-draws", 60, "rankings sampled per sweep point in -noise-sweep mode")
	seed := flag.Int64("seed", 1, "base seed; request i carries seed+i")
	out := flag.String("out", "-", `append JSON lines here ("-" for stdout)`)
	flag.Parse()

	specs, err := scenario.LoadCorpus(*corpus)
	if err != nil {
		log.Fatal(err)
	}
	if *maxN > 0 {
		kept := specs[:0]
		for _, s := range specs {
			if s.N <= *maxN {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if len(specs) == 0 {
		log.Fatalf("corpus %q has no usable specs", *corpus)
	}
	if *noiseSweep {
		if *noiseDraws < 1 {
			log.Fatalf("-noise-draws = %d, want ≥ 1", *noiseDraws)
		}
		w := io.Writer(os.Stdout)
		if *out != "-" {
			f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := runNoiseSweepMode(w, specs, *corpus, *noiseDraws, *seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("noise sweep held: every curve's noiseless anchor is bit-identical to the uncorrupted base sweep")
		return
	}
	if *concurrency < 1 || *requests < 1 || *batchSize < 1 {
		log.Fatalf("-concurrency, -requests, and -batch-size must be ≥ 1")
	}
	if *cancelFrac < 0 || *cancelFrac > 1 {
		log.Fatalf("-cancel = %v, want within [0, 1]", *cancelFrac)
	}
	if *topkFrac < 0 || *topkFrac > 1 {
		log.Fatalf("-topk-frac = %v, want within [0, 1]", *topkFrac)
	}
	if *cancelAfter < 0 {
		log.Fatalf("-cancel-after = %v, want ≥ 0", *cancelAfter)
	}
	if *mode != "sync" && *mode != "jobs" {
		log.Fatalf(`-mode = %q, want "sync" or "jobs"`, *mode)
	}
	if *fleet < 0 {
		log.Fatalf("-fleet = %d, want ≥ 0", *fleet)
	}
	if *fleet > 0 && *spawn {
		log.Fatalf("-fleet and -spawn are exclusive: -fleet spawns its own backends")
	}
	if *killBackend && *fleet < 2 {
		log.Fatalf("-kill-backend needs -fleet ≥ 2: a one-backend fleet has nothing to fail over to")
	}
	if *killBackend && *mode != "sync" {
		log.Fatalf("-kill-backend requires -mode sync: a killed backend loses the jobs it holds, so job polls fail by design")
	}
	if *restartDrill {
		if *mode != "jobs" {
			log.Fatalf("-restart-drill requires -mode jobs: only the async pipeline has durable state to recover")
		}
		if *fairrankdBin == "" {
			log.Fatalf("-restart-drill needs -fairrankd-bin: the drill kills and restarts a real process")
		}
		if *spawn || *fleet > 0 {
			log.Fatalf("-restart-drill is exclusive with -spawn and -fleet: it spawns its own fairrankd child")
		}
	}

	// Finished jobs stay stored until the TTL sweep (DELETE on a done
	// job is a 409), so a jobs-mode run must size the store for its own
	// job count — every logical request leaves one finished record.
	svcCfg := service.Config{}
	if *mode == "jobs" {
		if *duration > 0 {
			svcCfg.MaxJobs = 1 << 16
			svcCfg.JobTTL = 5 * time.Second // open-ended runs recycle instead
		} else {
			svcCfg.MaxJobs = *requests + *concurrency + 16
		}
	}

	base := *addr
	if *spawn {
		srv := httptest.NewServer(service.NewHandler(service.New(svcCfg)))
		defer srv.Close()
		base = srv.URL
		log.Printf("spawned in-process server at %s", base)
	}
	var fh *fleetHarness
	if *fleet > 0 {
		var err error
		fh, err = startFleetHarness(*fleet, svcCfg)
		if err != nil {
			log.Fatalf("fleet spawn: %v", err)
		}
		defer fh.Close()
		base = fh.URL()
		log.Printf("spawned in-process fleet: gateway at %s over %d backends", base, *fleet)
	}
	var ph *procHarness
	if *restartDrill {
		dir := *jobDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "fairrank-soak-jobs-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var err error
		ph, err = startProcHarness(*fairrankdBin, dir, svcCfg.MaxJobs)
		if err != nil {
			log.Fatalf("drill spawn: %v", err)
		}
		defer ph.Close()
		base = ph.URL()
		log.Printf("spawned fairrankd child (pid %d) at %s with durable jobs in %s", ph.pid(), base, dir)
	}

	targets, err := buildTargets(specs, strings.Split(*algorithms, ","), *noise, *topK)
	if err != nil {
		log.Fatal(err)
	}
	run := &soakRun{
		base:        base,
		mode:        *mode,
		client:      &http.Client{Timeout: 5 * time.Minute},
		targets:     targets,
		batchEvery:  *batchEvery,
		batchSize:   *batchSize,
		cancelFrac:  *cancelFrac,
		cancelAfter: *cancelAfter,
		topkFrac:    *topkFrac,
		seed:        *seed,
		counts:      map[string]*routeCount{},
		// The drill's dead window (kill → restarted and healthy) surfaces
		// as transport errors; the clients bridge it by retrying.
		retryTransport: *restartDrill,
	}
	log.Printf("replaying corpus %q (%d specs) against %s in %s mode: %d workers",
		*corpus, len(specs), base, *mode, *concurrency)
	if *killBackend {
		fh.scheduleKill(run.progress, *requests)
	}
	if *restartDrill {
		ph.scheduleKillRestart(run.progress, *requests)
	}
	summary := run.execute(*concurrency, *requests, *duration)
	if ph != nil {
		// The drill must have proved something: the kill fired, the
		// restarted server resumed interrupted jobs from the WAL, and
		// (checked above through run.execute) every job still finished
		// with verified items.
		recovered, err := ph.verifyRecovery(run.client)
		if err != nil {
			log.Fatalf("restart drill: %v", err)
		}
		summary.JobsRecovered = true
		log.Printf("restart drill held: SIGKILL mid-run, %d jobs resumed from the WAL, zero client-visible failures", recovered)
	}
	if fh != nil {
		// The gateway's aggregated fleet metrics must reconcile with the
		// client's ledger — including across the injected backend kill.
		if _, err := fh.reconcileFleet(run); err != nil {
			log.Fatalf("fleet reconciliation: %v", err)
		}
		summary.FleetReconciled = true
		log.Printf("gateway fleet metrics reconcile with the client's request counts")
	}
	if *spawn {
		// An exclusive in-process server lets the client hold the
		// observability layer to account: every request the client
		// completed must appear in the server's own route counters.
		m, err := run.reconcileMetrics()
		if err != nil {
			log.Fatalf("metrics reconciliation: %v", err)
		}
		summary.MetricsReconciled = true
		log.Printf("server /v1/metrics route counters reconcile with the client's request counts")
		// Same pact one layer down: the engine's draw-path split must
		// reconcile with the draws the client's requests imply.
		if err := run.reconcileDrawPaths(m); err != nil {
			log.Fatalf("draw-path reconciliation: %v", err)
		}
		summary.DrawPathReconciled = true
		summary.TruncatedByNoise = m.Engine.DrawsTruncatedByNoise
		log.Printf("engine draw-path counters reconcile: %d full + %d truncated draws (per axis: %v)",
			m.Engine.DrawsFull, m.Engine.DrawsTruncated, m.Engine.DrawsTruncatedByNoise)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run.report(w, *corpus, summary); err != nil {
		log.Fatal(err)
	}
	if summary.Failures > 0 {
		log.Fatalf("%d requests failed (excluding the %d injected cancellations)", summary.Failures, summary.Cancelled)
	}
	log.Printf("%d requests in %.2fs (%.1f req/s), %d injected cancellations, 0 failures",
		summary.Requests, summary.WallSeconds, summary.ThroughputRPS, summary.Cancelled)
}

// target is one pre-encoded (spec, algorithm) request template: the
// candidates are marshaled once per spec, so the load generator's own
// JSON encoding cost stays off the measured hot path as far as possible.
// drawsPerItem and truncNoise come from the fairrank registry and the
// serving defaults — how many engine draws one ranked item implies and,
// when the resolved noise mechanism has a truncated top-k draw path,
// its name — so the client can predict the server's per-noise draw-path
// counters without hardcoding per-algorithm knowledge.
type target struct {
	spec         scenario.Spec
	algorithm    string
	noise        string // per-request noise override ("" = server default)
	candidates   json.RawMessage
	topK         int
	drawsPerItem int64
	truncNoise   string // resolved noise name when its draw path truncates, else ""
}

// wireRequest mirrors service.RankRequest with pre-encoded candidates.
type wireRequest struct {
	Candidates json.RawMessage `json:"candidates"`
	Algorithm  string          `json:"algorithm,omitempty"`
	Noise      string          `json:"noise,omitempty"`
	TopK       *int            `json:"top_k,omitempty"`
	Seed       int64           `json:"seed"`
}

type wireBatch struct {
	Requests []wireRequest `json:"requests"`
}

func buildTargets(specs []scenario.Spec, algorithms []string, noiseOverride string, topK int) ([]target, error) {
	defaults := service.Catalog().Defaults
	if noiseOverride != "" {
		if _, ok := fairrank.LookupNoise(noiseOverride); !ok {
			return nil, fmt.Errorf("-noise %q is not a registered mechanism", noiseOverride)
		}
	}
	var out []target
	for _, spec := range specs {
		pool, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		cands := make([]service.Candidate, len(pool))
		for i, c := range pool {
			cands[i] = service.Candidate{ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
		}
		raw, err := json.Marshal(cands)
		if err != nil {
			return nil, err
		}
		for _, algo := range algorithms {
			algo = strings.TrimSpace(algo)
			if algo == "" {
				continue
			}
			tgt := target{spec: spec, algorithm: algo, noise: noiseOverride, candidates: raw, topK: topK}
			// Registry-driven draw accounting: strategy algorithms draw
			// nothing, single-sample mechanisms draw once, best-of
			// mechanisms draw the serving default Samples per item. The
			// noise resolves like the server does: a pinned mechanism
			// wins, then the request override, then the serving default;
			// its registry entry says whether top-k draws truncate.
			if info, ok := fairrank.LookupAlgorithm(algo); ok && info.Sampling {
				tgt.drawsPerItem = 1
				if info.BestOf {
					tgt.drawsPerItem = int64(defaults.Samples)
				}
				noise := string(info.Noise)
				if noise == "" {
					noise = noiseOverride
				}
				if noise == "" {
					noise = defaults.Noise
				}
				if ni, ok := fairrank.LookupNoise(noise); ok && ni.Truncated {
					tgt.truncNoise = noise
				}
			}
			out = append(out, tgt)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no (spec, algorithm) targets — empty -algorithms?")
	}
	return out, nil
}

// sample is one measured request. drawsFull/drawsTrunc are the engine
// draws the request implies per path if it completes — the client's
// side of the draw-path ledger (a cancelled or failed request may have
// contributed anywhere from zero up to that many); truncNoise names the
// noise axis the truncated draws ran on.
type sample struct {
	endpoint   string
	latency    time.Duration
	cancelled  bool
	failure    string // empty on success
	drawsFull  int64
	drawsTrunc int64
	truncNoise string // noise axis of drawsTrunc, "" when drawsTrunc == 0
}

// routeCount is the client's own ledger for one server route pattern:
// how many requests it sent and how many round-trips it completed
// (read a full response, whatever the status). The server's
// /v1/metrics requests counter for the route must land in
// [completed, attempts] — below means lost counts, above phantom ones.
type routeCount struct {
	attempts  int64
	completed int64
}

type soakRun struct {
	base        string
	mode        string
	client      *http.Client
	targets     []target
	batchEvery  int
	batchSize   int
	cancelFrac  float64
	cancelAfter time.Duration
	topkFrac    float64
	seed        int64
	// retryTransport makes jobCall retry transport-level failures —
	// the restart drill's dead window between SIGKILL and the restarted
	// server passing its health check.
	retryTransport bool

	mu      sync.Mutex
	samples []sample
	counts  map[string]*routeCount // by server route pattern
}

// Summary is the run-level soak result, serialized as the
// "soak-summary" line.
type Summary struct {
	Action        string  `json:"Action"`
	Corpus        string  `json:"Corpus"`
	Mode          string  `json:"Mode"`
	Target        string  `json:"Target"`
	Workers       int     `json:"Workers"`
	Requests      int     `json:"Requests"`
	Cancelled     int     `json:"Cancelled"`
	Failures      int     `json:"Failures"`
	WallSeconds   float64 `json:"WallSeconds"`
	ThroughputRPS float64 `json:"ThroughputRPS"`
	// MetricsReconciled reports that the server's /v1/metrics route
	// counters were checked against the client's ledger (spawned runs
	// only; a mismatch fails the run before this line is written).
	MetricsReconciled bool `json:"MetricsReconciled"`
	// DrawPathReconciled reports that the engine's full/truncated
	// draw-path split landed inside the bounds implied by the client's
	// per-request draw ledger (spawned runs only).
	DrawPathReconciled bool `json:"DrawPathReconciled"`
	// TruncatedByNoise echoes the server's per-noise truncated-draw
	// counters after they reconciled with the client's ledger, so a CI
	// gate can assert that a given noise axis actually exercised its
	// truncated path (spawned runs only; omitted when no draw
	// truncated).
	TruncatedByNoise map[string]int64 `json:"TruncatedByNoise,omitempty"`
	// FleetReconciled reports that the gateway's aggregated /v1/metrics
	// — route counters, picker decisions, backend lifecycle states, and
	// the fleet engine view — reconciled with the client's ledger
	// (-fleet runs only; a mismatch fails the run before this line is
	// written). In a -kill-backend run this includes the killed backend
	// being demoted and the fallback path having fired.
	FleetReconciled bool `json:"FleetReconciled"`
	// JobsRecovered reports that the -restart-drill held end to end:
	// fairrankd was SIGKILL'd mid-run, the restarted process resumed
	// interrupted jobs from the durable store (jobs.recovered > 0 on its
	// /v1/metrics), and every job still finished with verified items. A
	// failed drill aborts the run before this line is written.
	JobsRecovered bool `json:"JobsRecovered"`
}

// EndpointReport is the per-endpoint soak result, serialized as one
// "soak" line each.
type EndpointReport struct {
	Action       string  `json:"Action"`
	Corpus       string  `json:"Corpus"`
	Endpoint     string  `json:"Endpoint"`
	Requests     int     `json:"Requests"`
	Cancelled    int     `json:"Cancelled"`
	Failures     int     `json:"Failures"`
	LatencyMsP50 float64 `json:"LatencyMsP50"`
	LatencyMsP90 float64 `json:"LatencyMsP90"`
	LatencyMsP99 float64 `json:"LatencyMsP99"`
	LatencyMsMax float64 `json:"LatencyMsMax"`
}

func (r *soakRun) execute(workers, requests int, duration time.Duration) Summary {
	var next atomic.Int64
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
		requests = int(^uint(0) >> 1) // duration decides, not the count
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.seed + int64(w)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= requests || (!deadline.IsZero() && time.Now().After(deadline)) {
					return
				}
				r.record(r.send(i, rng))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	sum := Summary{Action: "soak-summary", Mode: r.mode, Target: r.base, Workers: workers}
	for _, s := range r.samples {
		sum.Requests++
		if s.cancelled {
			sum.Cancelled++
		} else if s.failure != "" {
			sum.Failures++
			log.Printf("failure on %s: %s", s.endpoint, s.failure)
		}
	}
	sum.WallSeconds = wall.Seconds()
	if wall > 0 {
		sum.ThroughputRPS = float64(sum.Requests) / wall.Seconds()
	}
	return sum
}

func (r *soakRun) record(s sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// progress reports how many requests have completed so far — the
// fleet harness's trigger for the mid-run backend kill.
func (r *soakRun) progress() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// countAttempt/countDone maintain the per-route reconciliation ledger.
func (r *soakRun) countAttempt(route string) {
	r.mu.Lock()
	c := r.counts[route]
	if c == nil {
		c = &routeCount{}
		r.counts[route] = c
	}
	c.attempts++
	r.mu.Unlock()
}

func (r *soakRun) countDone(route string) {
	r.mu.Lock()
	r.counts[route].completed++
	r.mu.Unlock()
}

// pickTopK decides whether logical request i carries the TopK cap: an
// i-based slice (not an RNG roll), so the topk/full mix of a run is
// deterministic and the client can bound the server's draw-path
// counters exactly.
func (r *soakRun) pickTopK(tgt target, i int) int {
	if tgt.topK <= 0 {
		return 0
	}
	if i%100 < int(r.topkFrac*100+0.5) {
		return tgt.topK
	}
	return 0
}

// send issues request i in the run's mode and stamps the sample with
// the draws it implies, split by path: the engine truncates exactly
// when the resolved noise has a truncated sampler and runs under a
// true prefix (k < n — the server clamps k ≥ n to a full ranking).
func (r *soakRun) send(i int, rng *rand.Rand) sample {
	tgt := r.targets[i%len(r.targets)]
	k := r.pickTopK(tgt, i)
	var s sample
	items := 1
	if r.mode == "jobs" {
		items = r.batchSize
		s = r.sendJob(i, rng, tgt, k)
	} else {
		if r.batchEvery > 0 && i%r.batchEvery == r.batchEvery-1 {
			items = r.batchSize
		}
		s = r.sendSync(i, rng, tgt, k)
	}
	draws := int64(items) * tgt.drawsPerItem
	if tgt.truncNoise != "" && k > 0 && k < tgt.spec.N {
		s.drawsTrunc = draws
		s.truncNoise = tgt.truncNoise
	} else {
		s.drawsFull = draws
	}
	return s
}

// sendSync issues request i: a batch when i hits the batch cadence, a
// single rank otherwise, optionally with an injected client-side
// cancellation.
func (r *soakRun) sendSync(i int, rng *rand.Rand, tgt target, k int) sample {
	endpoint, body := "/v1/rank", r.singleBody(tgt, i, k)
	isBatch := r.batchEvery > 0 && i%r.batchEvery == r.batchEvery-1
	if isBatch {
		endpoint, body = "/v1/rank/batch", r.batchBody(tgt, i, k)
	}
	route := http.MethodPost + " " + endpoint
	ctx := context.Background()
	injected := r.cancelFrac > 0 && rng.Float64() < r.cancelFrac
	if injected {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Int63n(int64(r.cancelAfter)+1)))
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+endpoint, bytes.NewReader(body))
	if err != nil {
		return sample{endpoint: endpoint, failure: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	r.countAttempt(route)
	start := time.Now()
	resp, err := r.client.Do(req)
	latency := time.Since(start)
	if err != nil {
		if injected && ctx.Err() != nil {
			return sample{endpoint: endpoint, latency: latency, cancelled: true}
		}
		return sample{endpoint: endpoint, latency: latency, failure: err.Error()}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		if injected && ctx.Err() != nil {
			return sample{endpoint: endpoint, latency: latency, cancelled: true}
		}
		return sample{endpoint: endpoint, latency: latency, failure: err.Error()}
	}
	r.countDone(route)
	if injected && (resp.StatusCode == 499 || ctx.Err() != nil) {
		return sample{endpoint: endpoint, latency: latency, cancelled: true}
	}
	if resp.StatusCode != http.StatusOK {
		return sample{endpoint: endpoint, latency: latency, failure: fmt.Sprintf("status %d: %s", resp.StatusCode, truncate(payload))}
	}
	if msg := checkPayload(isBatch, payload, tgt, k, r.batchSize); msg != "" {
		return sample{endpoint: endpoint, latency: latency, failure: msg}
	}
	return sample{endpoint: endpoint, latency: latency}
}

// jobCall is one counted round-trip of the job lifecycle (no
// cancellation injection on the control-plane calls — jobs mode
// exercises cancellation through DELETE instead). Under retryTransport
// a transport-level failure is retried for up to ~10s: the restart
// drill's dead window must read as latency, not as failures. Retrying
// the submit POST can double-submit a job the dying server already
// persisted; the orphan is resumed and finishes on its own, and the
// client simply tracks the job its retried submit returned.
func (r *soakRun) jobCall(method, path, route string, body []byte) (int, []byte, error) {
	status, payload, err := r.jobCallOnce(method, path, route, body)
	if err == nil || !r.retryTransport {
		return status, payload, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if status, payload, err = r.jobCallOnce(method, path, route, body); err == nil {
			return status, payload, nil
		}
	}
	return 0, nil, fmt.Errorf("no recovery within the retry budget: %w", err)
}

func (r *soakRun) jobCallOnce(method, path, route string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	r.countAttempt(route)
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	r.countDone(route)
	return resp.StatusCode, payload, nil
}

// sendJob drives one full async-job lifecycle: submit the batch, poll
// until done, verify every item, delete the job. The recorded latency
// is submit→results end to end. A cancelFrac roll instead cancels the
// job right after submission and verifies it is gone.
func (r *soakRun) sendJob(i int, rng *rand.Rand, tgt target, k int) sample {
	const endpoint = "/v1/jobs/rank"
	start := time.Now()
	status, payload, err := r.jobCall(http.MethodPost, endpoint, "POST /v1/jobs/rank", r.batchBody(tgt, i, k))
	if err != nil {
		return sample{endpoint: endpoint, latency: time.Since(start), failure: err.Error()}
	}
	if status != http.StatusAccepted {
		return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("submit status %d: %s", status, truncate(payload))}
	}
	var sub service.JobSubmitResponse
	if err := json.Unmarshal(payload, &sub); err != nil {
		return sample{endpoint: endpoint, latency: time.Since(start), failure: "undecodable submit response: " + err.Error()}
	}
	if sub.ID == "" || sub.Total != r.batchSize {
		return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("submit response %s: id %q, total %d want %d", truncate(payload), sub.ID, sub.Total, r.batchSize)}
	}
	jobPath := "/v1/jobs/" + sub.ID

	if r.cancelFrac > 0 && rng.Float64() < r.cancelFrac {
		if status, payload, err = r.jobCall(http.MethodDelete, jobPath, "DELETE /v1/jobs/{id}", nil); err != nil {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: err.Error()}
		}
		switch status {
		case http.StatusNoContent:
			if status, payload, err = r.jobCall(http.MethodGet, jobPath, "GET /v1/jobs/{id}", nil); err != nil {
				return sample{endpoint: endpoint, latency: time.Since(start), failure: err.Error()}
			}
			if status != http.StatusNotFound {
				return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("cancelled job still pollable: status %d: %s", status, truncate(payload))}
			}
			return sample{endpoint: endpoint, latency: time.Since(start), cancelled: true}
		case http.StatusConflict:
			// The job outran the cancel and already finished; its result
			// is immutable now. Verify it like an uncancelled job.
		default:
			return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("cancel status %d: %s", status, truncate(payload))}
		}
	}

	// Poll until terminal; the job layer owes progress monotonicity but
	// no latency bound beyond the corpus item cost, so the budget is
	// generous and the cadence short.
	deadline := time.Now().Add(2 * time.Minute)
	var st service.JobStatusResponse
	for {
		if time.Now().After(deadline) {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("job %s not done after 2m (last state %q, %d/%d)", sub.ID, st.State, st.Completed, st.Total)}
		}
		if status, payload, err = r.jobCall(http.MethodGet, jobPath, "GET /v1/jobs/{id}", nil); err != nil {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: err.Error()}
		}
		if status != http.StatusOK {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("poll status %d: %s", status, truncate(payload))}
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: "undecodable status: " + err.Error()}
		}
		if st.Completed < 0 || st.Completed > st.Total {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: fmt.Sprintf("progress out of range: %d/%d", st.Completed, st.Total)}
		}
		if st.State == service.JobStateDone {
			break
		}
		if st.State == service.JobStateCancelled {
			return sample{endpoint: endpoint, latency: time.Since(start), failure: "job cancelled without a client cancel"}
		}
		time.Sleep(2 * time.Millisecond)
	}
	latency := time.Since(start)
	if msg := checkJobItems(&st, tgt, k, r.batchSize); msg != "" {
		return sample{endpoint: endpoint, latency: latency, failure: msg}
	}
	// A finished job is not deletable — eviction belongs to the TTL
	// sweeper. The soak pins the 409 on every job, so a regression to
	// the old silently-deleting behavior fails the run.
	if status, payload, err = r.jobCall(http.MethodDelete, jobPath, "DELETE /v1/jobs/{id}", nil); err != nil {
		return sample{endpoint: endpoint, latency: latency, failure: err.Error()}
	}
	if status != http.StatusConflict {
		return sample{endpoint: endpoint, latency: latency, failure: fmt.Sprintf("delete of a finished job answered %d, want 409: %s", status, truncate(payload))}
	}
	return sample{endpoint: endpoint, latency: latency}
}

// checkJobItems sanity-checks a done job's results: zero dropped items,
// zero item errors, full rankings.
func checkJobItems(st *service.JobStatusResponse, tgt target, k, batchSize int) string {
	wantLen := tgt.spec.N
	if k > 0 && k < wantLen {
		wantLen = k
	}
	if len(st.Items) != batchSize || st.Completed != batchSize {
		return fmt.Sprintf("job returned %d items (%d completed), want %d", len(st.Items), st.Completed, batchSize)
	}
	if st.Failed != 0 {
		return fmt.Sprintf("job reported %d failed items", st.Failed)
	}
	for i, item := range st.Items {
		if item.Error != "" {
			return fmt.Sprintf("item %d error: %s", i, item.Error)
		}
		if item.Response == nil || len(item.Response.Ranking) != wantLen {
			got := -1
			if item.Response != nil {
				got = len(item.Response.Ranking)
			}
			return fmt.Sprintf("item %d ranked %d candidates, want %d", i, got, wantLen)
		}
	}
	return ""
}

// reconcileMetrics fetches the server's /v1/metrics and checks every
// route the client used against its own ledger: the server's requests
// counter must land in [completed, attempts]. The decoded snapshot is
// returned for further reconciliation passes.
func (r *soakRun) reconcileMetrics() (*service.MetricsResponse, error) {
	resp, err := r.client.Get(r.base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	var m service.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("undecodable metrics: %v", err)
	}
	byRoute := map[string]service.RouteMetrics{}
	for _, rt := range m.Routes {
		byRoute[rt.Route] = rt
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for route, c := range r.counts {
		got, ok := byRoute[route]
		if !ok {
			return nil, fmt.Errorf("route %q missing from /v1/metrics", route)
		}
		if got.Requests < c.completed || got.Requests > c.attempts {
			return nil, fmt.Errorf("route %q: server counted %d requests, client ledger wants [%d, %d]",
				route, got.Requests, c.completed, c.attempts)
		}
	}
	return &m, nil
}

// reconcileDrawPaths holds the engine's draw-path counters to account:
// per path, completed requests give the floor and attempted requests
// the ceiling (a cancelled or failed request contributes between zero
// and all of its draws, but never draws on the other path), and the
// split must sum to the total. The truncated side is additionally held
// per noise axis: each DrawsTruncatedByNoise counter must land inside
// the ledger's bounds for that mechanism, and the axes must sum to
// DrawsTruncated. Valid against an exclusive in-process server whose
// ranker cache saw no eviction — both are true of spawned smoke runs.
func (r *soakRun) reconcileDrawPaths(m *service.MetricsResponse) error {
	var okFull, attFull, okTrunc, attTrunc int64
	okTruncBy := map[string]int64{}
	attTruncBy := map[string]int64{}
	r.mu.Lock()
	for _, s := range r.samples {
		attFull += s.drawsFull
		attTrunc += s.drawsTrunc
		if s.drawsTrunc > 0 {
			attTruncBy[s.truncNoise] += s.drawsTrunc
		}
		if !s.cancelled && s.failure == "" {
			okFull += s.drawsFull
			okTrunc += s.drawsTrunc
			if s.drawsTrunc > 0 {
				okTruncBy[s.truncNoise] += s.drawsTrunc
			}
		}
	}
	r.mu.Unlock()
	e := m.Engine
	if e.DrawsFull+e.DrawsTruncated != e.Draws {
		return fmt.Errorf("draw-path split %d full + %d truncated does not sum to %d draws",
			e.DrawsFull, e.DrawsTruncated, e.Draws)
	}
	if e.DrawsFull < okFull || e.DrawsFull > attFull {
		return fmt.Errorf("server counted %d full-path draws, client ledger wants [%d, %d]",
			e.DrawsFull, okFull, attFull)
	}
	if e.DrawsTruncated < okTrunc || e.DrawsTruncated > attTrunc {
		return fmt.Errorf("server counted %d truncated draws, client ledger wants [%d, %d]",
			e.DrawsTruncated, okTrunc, attTrunc)
	}
	var axesSum int64
	for noise, c := range e.DrawsTruncatedByNoise {
		axesSum += c
		if c < okTruncBy[noise] || c > attTruncBy[noise] {
			return fmt.Errorf("server counted %d truncated draws on %q, client ledger wants [%d, %d]",
				c, noise, okTruncBy[noise], attTruncBy[noise])
		}
	}
	if axesSum != e.DrawsTruncated {
		return fmt.Errorf("per-noise truncation axes sum to %d, total is %d", axesSum, e.DrawsTruncated)
	}
	for noise, ok := range okTruncBy {
		if ok > 0 && e.DrawsTruncatedByNoise[noise] == 0 {
			return fmt.Errorf("client completed %d truncated draws on %q, server counted none", ok, noise)
		}
	}
	return nil
}

func (r *soakRun) singleBody(tgt target, i, k int) []byte {
	w := wireRequest{Candidates: tgt.candidates, Algorithm: tgt.algorithm, Noise: tgt.noise, Seed: r.seed + int64(i)}
	if k > 0 {
		w.TopK = &k
	}
	b, _ := json.Marshal(w)
	return b
}

func (r *soakRun) batchBody(tgt target, i, k int) []byte {
	batch := wireBatch{Requests: make([]wireRequest, r.batchSize)}
	for j := range batch.Requests {
		w := wireRequest{Candidates: tgt.candidates, Algorithm: tgt.algorithm, Noise: tgt.noise, Seed: r.seed + int64(i)*1000 + int64(j)}
		if k > 0 {
			w.TopK = &k
		}
		batch.Requests[j] = w
	}
	b, _ := json.Marshal(batch)
	return b
}

// checkPayload sanity-checks a 200 response: a soak run that happily
// measures the latency of garbage is worse than none.
func checkPayload(isBatch bool, payload []byte, tgt target, k, batchSize int) string {
	wantLen := tgt.spec.N
	if k > 0 && k < wantLen {
		wantLen = k
	}
	if isBatch {
		var b service.BatchResponse
		if err := json.Unmarshal(payload, &b); err != nil {
			return "undecodable batch response: " + err.Error()
		}
		if len(b.Items) != batchSize {
			return fmt.Sprintf("batch returned %d items, want %d", len(b.Items), batchSize)
		}
		for _, item := range b.Items {
			if item.Error != "" {
				return "batch item error: " + item.Error
			}
			if len(item.Response.Ranking) != wantLen {
				return fmt.Sprintf("batch item ranked %d candidates, want %d", len(item.Response.Ranking), wantLen)
			}
		}
		return ""
	}
	var resp service.RankResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		return "undecodable response: " + err.Error()
	}
	if len(resp.Ranking) != wantLen {
		return fmt.Sprintf("ranked %d candidates, want %d", len(resp.Ranking), wantLen)
	}
	return ""
}

// report appends the per-endpoint lines and the summary line to w.
func (r *soakRun) report(w io.Writer, corpus string, sum Summary) error {
	sum.Corpus = corpus
	enc := json.NewEncoder(w)
	byEndpoint := map[string][]sample{}
	for _, s := range r.samples {
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
	}
	for _, endpoint := range []string{"/v1/rank", "/v1/rank/batch", "/v1/jobs/rank"} {
		ss := byEndpoint[endpoint]
		if len(ss) == 0 {
			continue
		}
		rep := EndpointReport{Action: "soak", Corpus: corpus, Endpoint: endpoint}
		var lat []float64
		for _, s := range ss {
			rep.Requests++
			switch {
			case s.cancelled:
				rep.Cancelled++
			case s.failure != "":
				rep.Failures++
			default:
				lat = append(lat, float64(s.latency)/float64(time.Millisecond))
			}
		}
		if len(lat) > 0 {
			rep.LatencyMsP50 = stats.Quantile(lat, 0.50)
			rep.LatencyMsP90 = stats.Quantile(lat, 0.90)
			rep.LatencyMsP99 = stats.Quantile(lat, 0.99)
			rep.LatencyMsMax = stats.Max(lat)
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return enc.Encode(sum)
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
