// Command fairrank-soak load-tests a fairrankd server by replaying
// synthetic scenario corpora (internal/scenario) against it: concurrent
// clients mixing the single and batch ranking endpoints, with optional
// client-cancellation injection, recording latency percentiles and
// throughput as JSON lines in the BENCH artifact format.
//
// Point it at a running server:
//
//	fairrank-soak -addr http://localhost:8080 -corpus soak -requests 2000 -concurrency 16
//
// or let it spawn the serving stack in-process (no orchestration — the
// CI smoke path):
//
//	fairrank-soak -spawn -corpus smoke -requests 200 -out BENCH_pr.json
//
// -corpus accepts a built-in corpus name (see internal/scenario) or a
// JSON corpus file, the same loader cmd/datagen uses. Requests are
// deterministic: request i carries seed -seed+i, so a soak run is
// replayable and two runs against correct servers rank identically.
//
// Output is appended to -out as one JSON object per line with
// "Action": "soak" (one line per endpoint) and "Action": "soak-summary"
// (one line per run), so the lines coexist with a `go test -json`
// stream in the same BENCH file.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairrank-soak: ")
	addr := flag.String("addr", "http://localhost:8080", "base URL of the fairrankd server under test")
	spawn := flag.Bool("spawn", false, "serve in-process instead of targeting -addr (self-contained smoke runs)")
	corpus := flag.String("corpus", "soak", "built-in corpus name or JSON corpus file (shared with datagen); see internal/scenario")
	requests := flag.Int("requests", 200, "total requests to send")
	duration := flag.Duration("duration", 0, "if > 0, keep sending until this much time has passed (overrides -requests)")
	concurrency := flag.Int("concurrency", 8, "concurrent client goroutines")
	algorithms := flag.String("algorithms", string(service.Catalog().Defaults.Algorithm), "comma-separated algorithms to rotate through")
	topK := flag.Int("topk", 10, "top_k per request (bounds response size on large pools); 0 requests full rankings")
	batchEvery := flag.Int("batch-every", 10, "every k-th request goes to /v1/rank/batch (0 disables batches)")
	batchSize := flag.Int("batch-size", 4, "entries per batch request")
	cancelFrac := flag.Float64("cancel", 0, "fraction of requests cancelled client-side mid-flight (injection)")
	cancelAfter := flag.Duration("cancel-after", 2*time.Millisecond, "cancellation delay for injected cancels")
	maxN := flag.Int("max-n", 0, "skip corpus specs with more than this many candidates (0 = no cap)")
	seed := flag.Int64("seed", 1, "base seed; request i carries seed+i")
	out := flag.String("out", "-", `append JSON lines here ("-" for stdout)`)
	flag.Parse()

	specs, err := scenario.LoadCorpus(*corpus)
	if err != nil {
		log.Fatal(err)
	}
	if *maxN > 0 {
		kept := specs[:0]
		for _, s := range specs {
			if s.N <= *maxN {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if len(specs) == 0 {
		log.Fatalf("corpus %q has no usable specs", *corpus)
	}
	if *concurrency < 1 || *requests < 1 || *batchSize < 1 {
		log.Fatalf("-concurrency, -requests, and -batch-size must be ≥ 1")
	}
	if *cancelFrac < 0 || *cancelFrac > 1 {
		log.Fatalf("-cancel = %v, want within [0, 1]", *cancelFrac)
	}
	if *cancelAfter < 0 {
		log.Fatalf("-cancel-after = %v, want ≥ 0", *cancelAfter)
	}

	base := *addr
	if *spawn {
		srv := httptest.NewServer(service.NewHandler(service.New(service.Config{})))
		defer srv.Close()
		base = srv.URL
		log.Printf("spawned in-process server at %s", base)
	}

	targets, err := buildTargets(specs, strings.Split(*algorithms, ","), *topK)
	if err != nil {
		log.Fatal(err)
	}
	run := &soakRun{
		base:        base,
		client:      &http.Client{Timeout: 5 * time.Minute},
		targets:     targets,
		batchEvery:  *batchEvery,
		batchSize:   *batchSize,
		cancelFrac:  *cancelFrac,
		cancelAfter: *cancelAfter,
		seed:        *seed,
	}
	log.Printf("replaying corpus %q (%d specs) against %s: %d workers", *corpus, len(specs), base, *concurrency)
	summary := run.execute(*concurrency, *requests, *duration)

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run.report(w, *corpus, summary); err != nil {
		log.Fatal(err)
	}
	if summary.Failures > 0 {
		log.Fatalf("%d requests failed (excluding the %d injected cancellations)", summary.Failures, summary.Cancelled)
	}
	log.Printf("%d requests in %.2fs (%.1f req/s), %d injected cancellations, 0 failures",
		summary.Requests, summary.WallSeconds, summary.ThroughputRPS, summary.Cancelled)
}

// target is one pre-encoded (spec, algorithm) request template: the
// candidates are marshaled once per spec, so the load generator's own
// JSON encoding cost stays off the measured hot path as far as possible.
type target struct {
	spec       scenario.Spec
	algorithm  string
	candidates json.RawMessage
	topK       int
}

// wireRequest mirrors service.RankRequest with pre-encoded candidates.
type wireRequest struct {
	Candidates json.RawMessage `json:"candidates"`
	Algorithm  string          `json:"algorithm,omitempty"`
	TopK       *int            `json:"top_k,omitempty"`
	Seed       int64           `json:"seed"`
}

type wireBatch struct {
	Requests []wireRequest `json:"requests"`
}

func buildTargets(specs []scenario.Spec, algorithms []string, topK int) ([]target, error) {
	var out []target
	for _, spec := range specs {
		pool, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		cands := make([]service.Candidate, len(pool))
		for i, c := range pool {
			cands[i] = service.Candidate{ID: c.ID, Score: c.Score, Group: c.Group, Attrs: c.Attrs}
		}
		raw, err := json.Marshal(cands)
		if err != nil {
			return nil, err
		}
		for _, algo := range algorithms {
			algo = strings.TrimSpace(algo)
			if algo == "" {
				continue
			}
			out = append(out, target{spec: spec, algorithm: algo, candidates: raw, topK: topK})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no (spec, algorithm) targets — empty -algorithms?")
	}
	return out, nil
}

// sample is one measured request.
type sample struct {
	endpoint  string
	latency   time.Duration
	cancelled bool
	failure   string // empty on success
}

type soakRun struct {
	base        string
	client      *http.Client
	targets     []target
	batchEvery  int
	batchSize   int
	cancelFrac  float64
	cancelAfter time.Duration
	seed        int64

	mu      sync.Mutex
	samples []sample
}

// Summary is the run-level soak result, serialized as the
// "soak-summary" line.
type Summary struct {
	Action        string  `json:"Action"`
	Corpus        string  `json:"Corpus"`
	Target        string  `json:"Target"`
	Workers       int     `json:"Workers"`
	Requests      int     `json:"Requests"`
	Cancelled     int     `json:"Cancelled"`
	Failures      int     `json:"Failures"`
	WallSeconds   float64 `json:"WallSeconds"`
	ThroughputRPS float64 `json:"ThroughputRPS"`
}

// EndpointReport is the per-endpoint soak result, serialized as one
// "soak" line each.
type EndpointReport struct {
	Action       string  `json:"Action"`
	Corpus       string  `json:"Corpus"`
	Endpoint     string  `json:"Endpoint"`
	Requests     int     `json:"Requests"`
	Cancelled    int     `json:"Cancelled"`
	Failures     int     `json:"Failures"`
	LatencyMsP50 float64 `json:"LatencyMsP50"`
	LatencyMsP90 float64 `json:"LatencyMsP90"`
	LatencyMsP99 float64 `json:"LatencyMsP99"`
	LatencyMsMax float64 `json:"LatencyMsMax"`
}

func (r *soakRun) execute(workers, requests int, duration time.Duration) Summary {
	var next atomic.Int64
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
		requests = int(^uint(0) >> 1) // duration decides, not the count
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.seed + int64(w)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= requests || (!deadline.IsZero() && time.Now().After(deadline)) {
					return
				}
				r.record(r.send(i, rng))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	sum := Summary{Action: "soak-summary", Target: r.base, Workers: workers}
	for _, s := range r.samples {
		sum.Requests++
		if s.cancelled {
			sum.Cancelled++
		} else if s.failure != "" {
			sum.Failures++
			log.Printf("failure on %s: %s", s.endpoint, s.failure)
		}
	}
	sum.WallSeconds = wall.Seconds()
	if wall > 0 {
		sum.ThroughputRPS = float64(sum.Requests) / wall.Seconds()
	}
	return sum
}

func (r *soakRun) record(s sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// send issues request i: a batch when i hits the batch cadence, a
// single rank otherwise, optionally with an injected client-side
// cancellation.
func (r *soakRun) send(i int, rng *rand.Rand) sample {
	tgt := r.targets[i%len(r.targets)]
	endpoint, body := "/v1/rank", r.singleBody(tgt, i)
	isBatch := r.batchEvery > 0 && i%r.batchEvery == r.batchEvery-1
	if isBatch {
		endpoint, body = "/v1/rank/batch", r.batchBody(tgt, i)
	}
	ctx := context.Background()
	injected := r.cancelFrac > 0 && rng.Float64() < r.cancelFrac
	if injected {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Int63n(int64(r.cancelAfter)+1)))
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+endpoint, bytes.NewReader(body))
	if err != nil {
		return sample{endpoint: endpoint, failure: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.client.Do(req)
	latency := time.Since(start)
	if err != nil {
		if injected && ctx.Err() != nil {
			return sample{endpoint: endpoint, latency: latency, cancelled: true}
		}
		return sample{endpoint: endpoint, latency: latency, failure: err.Error()}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		if injected && ctx.Err() != nil {
			return sample{endpoint: endpoint, latency: latency, cancelled: true}
		}
		return sample{endpoint: endpoint, latency: latency, failure: err.Error()}
	}
	if injected && (resp.StatusCode == 499 || ctx.Err() != nil) {
		return sample{endpoint: endpoint, latency: latency, cancelled: true}
	}
	if resp.StatusCode != http.StatusOK {
		return sample{endpoint: endpoint, latency: latency, failure: fmt.Sprintf("status %d: %s", resp.StatusCode, truncate(payload))}
	}
	if msg := checkPayload(isBatch, payload, tgt, r.batchSize); msg != "" {
		return sample{endpoint: endpoint, latency: latency, failure: msg}
	}
	return sample{endpoint: endpoint, latency: latency}
}

func (r *soakRun) singleBody(tgt target, i int) []byte {
	w := wireRequest{Candidates: tgt.candidates, Algorithm: tgt.algorithm, Seed: r.seed + int64(i)}
	if tgt.topK > 0 {
		k := tgt.topK
		w.TopK = &k
	}
	b, _ := json.Marshal(w)
	return b
}

func (r *soakRun) batchBody(tgt target, i int) []byte {
	batch := wireBatch{Requests: make([]wireRequest, r.batchSize)}
	for j := range batch.Requests {
		w := wireRequest{Candidates: tgt.candidates, Algorithm: tgt.algorithm, Seed: r.seed + int64(i)*1000 + int64(j)}
		if tgt.topK > 0 {
			k := tgt.topK
			w.TopK = &k
		}
		batch.Requests[j] = w
	}
	b, _ := json.Marshal(batch)
	return b
}

// checkPayload sanity-checks a 200 response: a soak run that happily
// measures the latency of garbage is worse than none.
func checkPayload(isBatch bool, payload []byte, tgt target, batchSize int) string {
	wantLen := tgt.spec.N
	if tgt.topK > 0 && tgt.topK < wantLen {
		wantLen = tgt.topK
	}
	if isBatch {
		var b service.BatchResponse
		if err := json.Unmarshal(payload, &b); err != nil {
			return "undecodable batch response: " + err.Error()
		}
		if len(b.Items) != batchSize {
			return fmt.Sprintf("batch returned %d items, want %d", len(b.Items), batchSize)
		}
		for _, item := range b.Items {
			if item.Error != "" {
				return "batch item error: " + item.Error
			}
			if len(item.Response.Ranking) != wantLen {
				return fmt.Sprintf("batch item ranked %d candidates, want %d", len(item.Response.Ranking), wantLen)
			}
		}
		return ""
	}
	var resp service.RankResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		return "undecodable response: " + err.Error()
	}
	if len(resp.Ranking) != wantLen {
		return fmt.Sprintf("ranked %d candidates, want %d", len(resp.Ranking), wantLen)
	}
	return ""
}

// report appends the per-endpoint lines and the summary line to w.
func (r *soakRun) report(w io.Writer, corpus string, sum Summary) error {
	sum.Corpus = corpus
	enc := json.NewEncoder(w)
	byEndpoint := map[string][]sample{}
	for _, s := range r.samples {
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
	}
	for _, endpoint := range []string{"/v1/rank", "/v1/rank/batch"} {
		ss := byEndpoint[endpoint]
		if len(ss) == 0 {
			continue
		}
		rep := EndpointReport{Action: "soak", Corpus: corpus, Endpoint: endpoint}
		var lat []float64
		for _, s := range ss {
			rep.Requests++
			switch {
			case s.cancelled:
				rep.Cancelled++
			case s.failure != "":
				rep.Failures++
			default:
				lat = append(lat, float64(s.latency)/float64(time.Millisecond))
			}
		}
		if len(lat) > 0 {
			rep.LatencyMsP50 = stats.Quantile(lat, 0.50)
			rep.LatencyMsP90 = stats.Quantile(lat, 0.90)
			rep.LatencyMsP99 = stats.Quantile(lat, 0.99)
			rep.LatencyMsMax = stats.Max(lat)
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return enc.Encode(sum)
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
