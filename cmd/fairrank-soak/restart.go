package main

// The -restart-drill topology: one real fairrankd child process with a
// durable -job-dir, killed with SIGKILL a third of the way through the
// run and restarted over the same store. SIGKILL — not SIGTERM — is
// the point: no drain, no suspend, no goodbye; whatever the WAL holds
// at that instant is all the restarted process gets, and the drill
// holds only if every interrupted job still finishes with verified
// items. The graceful-drain half of the durability story is covered by
// the in-package service tests; this is the half only a dead process
// can prove.

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

type procHarness struct {
	bin, dir string
	port     int
	maxJobs  int

	mu       sync.Mutex
	cmd      *exec.Cmd
	restarts atomic.Int32
}

// startProcHarness picks a port, starts the fairrankd child on it, and
// blocks until it answers health checks.
func startProcHarness(bin, dir string, maxJobs int) (*procHarness, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	h := &procHarness{bin: bin, dir: dir, port: port, maxJobs: maxJobs}
	if err := h.start(); err != nil {
		return nil, err
	}
	if err := h.waitHealthy(15 * time.Second); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

func (h *procHarness) URL() string { return fmt.Sprintf("http://127.0.0.1:%d", h.port) }

func (h *procHarness) pid() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cmd == nil || h.cmd.Process == nil {
		return 0
	}
	return h.cmd.Process.Pid
}

func (h *procHarness) start() error {
	cmd := exec.Command(h.bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", h.port),
		"-job-dir", h.dir,
		"-max-jobs", strconv.Itoa(h.maxJobs),
		"-quiet",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", h.bin, err)
	}
	h.mu.Lock()
	h.cmd = cmd
	h.mu.Unlock()
	return nil
}

func (h *procHarness) waitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(h.URL() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fairrankd child not healthy within %s", budget)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// scheduleKillRestart arms the drill: once the run has completed about
// a third of its requests, the child is killed abruptly and restarted
// over the same -job-dir while the clients keep sending. The kill is
// gated on the store provably holding unfinished work at that instant:
// smoke-corpus jobs finish in single-digit milliseconds, so a blind
// kill can land in a gap where every submitted job is already done and
// the restart would prove nothing about recovery.
func (h *procHarness) scheduleKillRestart(progress func() int, total int) {
	threshold := total / 3
	if threshold < 1 {
		threshold = 1
	}
	go func() {
		for progress() < threshold {
			time.Sleep(5 * time.Millisecond)
		}
		client := &http.Client{Timeout: time.Second}
		deadline := time.Now().Add(10 * time.Second)
		for !h.hasUnfinished(client) && time.Now().Before(deadline) {
		}
		h.mu.Lock()
		cmd := h.cmd
		h.mu.Unlock()
		log.Printf("SIGKILL fairrankd (pid %d) mid-run — durability injection", cmd.Process.Pid)
		cmd.Process.Kill()
		cmd.Wait()
		if err := h.start(); err != nil {
			log.Fatalf("drill restart: %v", err)
		}
		if err := h.waitHealthy(15 * time.Second); err != nil {
			log.Fatalf("drill restart: %v", err)
		}
		h.restarts.Add(1)
		log.Printf("restarted fairrankd (pid %d) over the same job dir", h.pid())
	}()
}

// hasUnfinished reports whether the child's job store currently holds
// at least one pending or running job. The drill polls this in a tight
// loop and pulls the trigger the instant it turns true, keeping the
// window between "unfinished job observed" and "SIGKILL delivered" down
// to a syscall.
func (h *procHarness) hasUnfinished(client *http.Client) bool {
	resp, err := client.Get(h.URL() + "/v1/jobs?state=pending&state=running")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var page service.JobListResponse
	if err := decodeJSON(resp, &page); err != nil {
		return false
	}
	return len(page.Jobs) > 0
}

// verifyRecovery checks, after the run, that the drill actually proved
// durability: the kill+restart fired, and the restarted server resumed
// at least one interrupted job from the WAL (its /v1/metrics
// jobs.recovered counter). Returns the recovered count.
func (h *procHarness) verifyRecovery(client *http.Client) (int64, error) {
	if h.restarts.Load() == 0 {
		return 0, fmt.Errorf("the kill+restart never fired before the run ended")
	}
	resp, err := client.Get(h.URL() + "/v1/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	var m service.MetricsResponse
	if err := decodeJSON(resp, &m); err != nil {
		return 0, err
	}
	if m.Jobs.Recovered == 0 {
		return 0, fmt.Errorf("restarted server resumed no jobs — the drill proved nothing about recovery")
	}
	return m.Jobs.Recovered, nil
}

func (h *procHarness) Close() {
	h.mu.Lock()
	cmd := h.cmd
	h.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}
