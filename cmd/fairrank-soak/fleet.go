package main

// The -fleet topology: N in-process fairrankd backends (real listeners
// on ephemeral ports) behind an in-process fairrank-gateway, with the
// soak clients pointed at the gateway. -kill-backend abruptly stops
// one backend a third of the way through the run — the availability
// drill the gateway's retry/failover path exists for: the run must
// still end with zero client-visible failures, and the reconciliation
// pass then holds the gateway's aggregated /v1/metrics to the client's
// ledger (FleetReconciled in the summary line).

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/service"
)

type fleetHarness struct {
	backends []*service.Server
	gw       *gateway.Gateway
	srv      *httptest.Server
	killed   bool
	victim   atomic.Int32 // config index of the killed backend; -1 until the kill fires
}

// startFleetHarness spawns the fleet and blocks until the gateway's
// probes have promoted every backend to serving. svcCfg is applied to
// every backend (jobs-mode runs size the job store through it).
func startFleetHarness(n int, svcCfg service.Config) (*fleetHarness, error) {
	h := &fleetHarness{}
	h.victim.Store(-1)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := service.NewServer(service.ServerConfig{
			Config: svcCfg,
			Addr:   "127.0.0.1:0",
		})
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("backend %d: %w", i, err)
		}
		if err := srv.Start(); err != nil {
			h.Close()
			return nil, fmt.Errorf("backend %d: %w", i, err)
		}
		h.backends = append(h.backends, srv)
		urls[i] = srv.URL()
	}
	// Test-speed cadences: probes fast enough to demote a killed
	// backend within a few client requests, retries fast enough to keep
	// failover latency inside the soak's latency budget.
	g, err := gateway.New(gateway.Config{
		Backends:      urls,
		ProbeInterval: 25 * time.Millisecond,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.gw = g
	g.Start()
	h.srv = httptest.NewServer(g.Handler())
	deadline := time.Now().Add(10 * time.Second)
	for g.Serving() < n {
		if time.Now().After(deadline) {
			h.Close()
			return nil, fmt.Errorf("fleet stuck at %d/%d serving backends", g.Serving(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return h, nil
}

// URL is the gateway base URL the soak clients target.
func (h *fleetHarness) URL() string { return h.srv.URL }

// scheduleKill arms the failover injection: once the run has completed
// about a third of its requests, the busiest backend is stopped
// abruptly (open connections included) while the clients keep sending.
// The busiest backend provably owns live shard keys, so the rest of
// the run must exercise the gateway's retry/fallback path, not just
// survive by luck of the hash.
func (h *fleetHarness) scheduleKill(progress func() int, total int) {
	threshold := total / 3
	if threshold < 1 {
		threshold = 1
	}
	h.killed = true
	go func() {
		for progress() < threshold {
			time.Sleep(5 * time.Millisecond)
		}
		m := h.gw.Metrics(context.Background())
		victim := 0
		for i := range m.Backends {
			if m.Backends[i].Requests > m.Backends[victim].Requests {
				victim = i
			}
		}
		h.victim.Store(int32(victim))
		h.backends[victim].Close()
		log.Printf("killed backend %s (%s, busiest with %d attempts) mid-run — failover injection",
			m.Backends[victim].Name, h.backends[victim].URL(), m.Backends[victim].Requests)
	}()
}

func (h *fleetHarness) Close() {
	if h.srv != nil {
		h.srv.Close()
	}
	if h.gw != nil {
		h.gw.Stop()
	}
	for _, b := range h.backends {
		b.Close() // safe on the killed backend: Close is idempotent
	}
}

// reconcileFleet holds the gateway's aggregated /v1/metrics to the
// client's ledger after the run:
//
//   - every route's gateway counter lands in [completed, attempts];
//   - no request was ever unroutable, and in a kill run the victim is
//     demoted out of the serving pool while every survivor still serves;
//   - picker decisions and backend forwarding attempts cover the
//     forwarded traffic (retries make attempts ≥ decisions ≥ requests);
//   - the fleet engine aggregate reports the survivors' ranking work.
func (h *fleetHarness) reconcileFleet(r *soakRun) (*gateway.MetricsResponse, error) {
	resp, err := r.client.Get(h.URL() + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	var m gateway.MetricsResponse
	if err := decodeJSON(resp, &m); err != nil {
		return nil, err
	}

	byRoute := map[string]gateway.RouteMetrics{}
	var forwarded int64
	for _, rt := range m.Routes {
		byRoute[rt.Route] = rt
	}
	r.mu.Lock()
	for route, c := range r.counts {
		got, ok := byRoute[route]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("route %q missing from the gateway's /v1/metrics", route)
		}
		if got.Requests < c.completed || got.Requests > c.attempts {
			r.mu.Unlock()
			return nil, fmt.Errorf("route %q: gateway counted %d requests, client ledger wants [%d, %d]",
				route, got.Requests, c.completed, c.attempts)
		}
		forwarded += got.Requests
	}
	r.mu.Unlock()

	if m.Picker.Unroutable != 0 {
		return nil, fmt.Errorf("%d requests found no serving backend — the fleet lost availability", m.Picker.Unroutable)
	}
	wantServing := len(h.backends)
	if h.killed {
		wantServing--
		vi := h.victim.Load()
		if vi < 0 {
			return nil, fmt.Errorf("kill was armed but never fired before the run ended")
		}
		victim := m.Backends[vi]
		if victim.State == "serving" {
			return nil, fmt.Errorf("killed backend %s still marked serving", victim.Name)
		}
		if victim.Transitions == 0 {
			return nil, fmt.Errorf("killed backend %s recorded no lifecycle transitions", victim.Name)
		}
	}
	if m.Fleet.Serving != wantServing {
		return nil, fmt.Errorf("%d backends serving after the run, want %d", m.Fleet.Serving, wantServing)
	}
	if m.Fleet.Reporting != wantServing {
		return nil, fmt.Errorf("%d backends reported engine metrics, want %d", m.Fleet.Reporting, wantServing)
	}

	var attempts int64
	for _, b := range m.Backends {
		attempts += b.Requests
	}
	decisions := m.Picker.Primary + m.Picker.Fallback
	// Every decision is one forwarding attempt on the sharded routes;
	// job-affinity routes attempt without a picker decision, and
	// retries decide again — so attempts ≥ decisions, and the decisions
	// cover at least the completed sharded traffic.
	if attempts < decisions {
		return nil, fmt.Errorf("backends saw %d attempts but the picker decided %d times", attempts, decisions)
	}
	if decisions == 0 && forwarded > 0 {
		return nil, fmt.Errorf("gateway forwarded %d requests with zero picker decisions", forwarded)
	}
	if h.killed && m.Picker.Fallback == 0 {
		return nil, fmt.Errorf("backend killed but the picker never fell back off the dead owner")
	}
	if m.Fleet.Engine.Requests == 0 || m.Fleet.Engine.Draws == 0 {
		return nil, fmt.Errorf("fleet engine aggregate is empty (%d requests, %d draws) after a full soak",
			m.Fleet.Engine.Requests, m.Fleet.Engine.Draws)
	}
	return &m, nil
}

func decodeJSON(resp *http.Response, dst any) error {
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("undecodable gateway metrics: %w", err)
	}
	return nil
}
