// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) and writes them as text and CSV into an output
// directory.
//
// Usage:
//
//	experiments [-out results] [-quick] [-only fig1,fig2,...]
//
// -quick shrinks sample counts for a fast smoke run; the default
// configuration mirrors the paper (bootstrap n=1000, 15 repetitions,
// ranking sizes 10…100).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "shrink sample counts for a fast smoke run")
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,fig3,fig4,german,germanbinary")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string) bool { return len(selected) == 0 || selected[name] }

	if run("fig1") {
		cfg := experiments.DefaultFig1Config()
		if *quick {
			cfg.Samples = 200
			cfg.BootstrapN = 200
		}
		step("fig1", func() error {
			fig, err := experiments.Fig1(cfg)
			if err != nil {
				return err
			}
			return writeFigure(*out, fig)
		})
	}
	if run("fig2") || run("fig3") || run("fig4") {
		cfg := experiments.DefaultScoreGapConfig()
		if *quick {
			cfg.Reps = 15
			cfg.Samples = 10
			cfg.BootstrapN = 200
		}
		if run("fig2") {
			step("fig2", func() error {
				fig, err := experiments.Fig2(cfg)
				if err != nil {
					return err
				}
				return writeFigure(*out, fig)
			})
		}
		if run("fig3") {
			step("fig3", func() error {
				fig, err := experiments.Fig3(cfg)
				if err != nil {
					return err
				}
				return writeFigure(*out, fig)
			})
		}
		if run("fig4") {
			step("fig4", func() error {
				fig, err := experiments.Fig4(cfg)
				if err != nil {
					return err
				}
				return writeFigure(*out, fig)
			})
		}
	}
	if run("german") {
		cfg := experiments.DefaultGermanConfig()
		if *quick {
			cfg.Sizes = []int{10, 30, 50}
			cfg.Reps = 5
			cfg.BootstrapN = 200
		}
		step("german (table1 + figs 5-7)", func() error {
			res, err := experiments.German(cfg)
			if err != nil {
				return err
			}
			if err := writeTable(*out, res.TableI); err != nil {
				return err
			}
			for _, fig := range []*experiments.Figure{res.Fig5, res.Fig6, res.Fig7} {
				if err := writeFigure(*out, fig); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if run("germanbinary") {
		cfg := experiments.DefaultGermanConfig()
		if *quick {
			cfg.Sizes = []int{10, 30, 50}
			cfg.Reps = 5
			cfg.BootstrapN = 200
		}
		step("german-binary extension (figE1)", func() error {
			fig, err := experiments.GermanBinary(cfg)
			if err != nil {
				return err
			}
			return writeFigure(*out, fig)
		})
	}
	log.Printf("results written to %s", *out)
}

func step(name string, fn func() error) {
	start := time.Now()
	log.Printf("running %s …", name)
	if err := fn(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	log.Printf("%s done in %v", name, time.Since(start).Round(time.Millisecond))
}

func writeFigure(dir string, fig *experiments.Figure) error {
	if err := writeTo(filepath.Join(dir, fig.ID+".txt"), fig.WriteText); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, fig.ID+".csv"), fig.WriteCSV); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, fig.ID+".chart.txt"), fig.WriteCharts); err != nil {
		return err
	}
	// Also echo the text rendering to stdout for interactive runs.
	return fig.WriteText(os.Stdout)
}

func writeTable(dir string, tab *experiments.Table) error {
	if err := writeTo(filepath.Join(dir, tab.ID+".txt"), tab.WriteText); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, tab.ID+".csv"), tab.WriteCSV); err != nil {
		return err
	}
	return tab.WriteText(os.Stdout)
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
