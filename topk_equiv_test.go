package fairrank

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestTopKMatchesFullPath is the engine-level equivalence gate of the
// truncated draw path: for every registered algorithm × noise pair and
// an (n, k, θ) grid covering k = 1, k = n, k > n, and the θ = 0 uniform
// limit, a TopK request served normally (the truncated sampler wherever
// the engine can use it) must return exactly — ranking and diagnostics —
// what the forced full-length reference path returns for the same seed,
// sequentially and under DoParallel's per-draw derived streams. Run it
// under -race to also exercise the pooled buffers and shared criterion
// state across the parallel fan-out.
func TestTopKMatchesFullPath(t *testing.T) {
	type dims struct{ n, k int }
	grid := []dims{{6, 1}, {12, 5}, {12, 12}, {12, 40}, {18, 7}}
	thetas := []float64{0, 1.3}
	for _, info := range Algorithms() {
		if strings.HasPrefix(info.Name, "test:") {
			continue
		}
		noises := []string{""}
		if info.Sampling && info.Noise == "" {
			noises = noises[:0]
			for _, ni := range Noises() {
				if !strings.HasPrefix(ni.Name, "test:") {
					noises = append(noises, ni.Name)
				}
			}
		}
		for _, noise := range noises {
			for _, theta := range thetas {
				for _, d := range grid {
					name := info.Name
					if noise != "" {
						name += "×" + noise
					}
					t.Run(name, func(t *testing.T) {
						fast, err := NewRanker(Config{Algorithm: Algorithm(info.Name)})
						if err != nil {
							t.Fatal(err)
						}
						ref, err := NewRanker(Config{Algorithm: Algorithm(info.Name)})
						if err != nil {
							t.Fatal(err)
						}
						ref.forceFullDraws = true
						req := Request{
							Candidates: pool(d.n),
							Theta:      &theta,
							Noise:      Noise(noise),
							TopK:       iptr(d.k),
							Seed:       sptr(int64(d.n*100 + d.k)),
						}
						got, err := fast.Do(context.Background(), req)
						if err != nil {
							t.Fatal(err)
						}
						want, err := ref.Do(context.Background(), req)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("n=%d k=%d θ=%g: Do diverged between truncated and reference paths\nfast %+v\nref  %+v", d.n, d.k, theta, got, want)
						}
						gotP, err := fast.DoParallel(context.Background(), req, 3)
						if err != nil {
							t.Fatal(err)
						}
						wantP, err := ref.DoParallel(context.Background(), req, 3)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotP, wantP) {
							t.Errorf("n=%d k=%d θ=%g: DoParallel diverged between truncated and reference paths", d.n, d.k, theta)
						}
						// Multi-draw sweeps share one sequential stream per
						// draw seed; the truncated path must stay aligned
						// across the whole sweep, not just draw 0.
						var fastSeq, refSeq []*Result
						if err := fast.Sample(context.Background(), req, 4, func(_ int, res *Result) error {
							fastSeq = append(fastSeq, res)
							return nil
						}); err != nil {
							t.Fatal(err)
						}
						if err := ref.Sample(context.Background(), req, 4, func(_ int, res *Result) error {
							refSeq = append(refSeq, res)
							return nil
						}); err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(fastSeq, refSeq) {
							t.Errorf("n=%d k=%d θ=%g: Sample sweep diverged between truncated and reference paths", d.n, d.k, theta)
						}
						// The fast engine must actually have used the
						// truncated path where it applies: any built-in
						// noise mechanism with a true prefix, not just
						// Mallows.
						stats := fast.Stats()
						resolved := info.Noise
						if info.Sampling && resolved == "" {
							resolved = Noise(noise)
						}
						truncPath := false
						if info.Sampling {
							if ni, ok := LookupNoise(string(resolved)); ok {
								truncPath = ni.Truncated
							}
						}
						if truncPath && d.k < d.n {
							if stats.DrawsTruncated == 0 {
								t.Errorf("n=%d k=%d: no truncated draws recorded on the %s fast path (stats %+v)", d.n, d.k, resolved, stats)
							}
							if stats.DrawsTruncatedByNoise[string(resolved)] == 0 {
								t.Errorf("n=%d k=%d: truncated draws not attributed to noise %q (per-noise %v)", d.n, d.k, resolved, stats.DrawsTruncatedByNoise)
							}
						}
						var axes int64
						for _, c := range stats.DrawsTruncatedByNoise {
							axes += c
						}
						if axes != stats.DrawsTruncated {
							t.Errorf("per-noise truncation axes sum to %d, total is %d", axes, stats.DrawsTruncated)
						}
						if refStats := ref.Stats(); refStats.DrawsTruncated != 0 {
							t.Errorf("reference path recorded %d truncated draws, want 0", refStats.DrawsTruncated)
						}
						if stats.DrawsFull+stats.DrawsTruncated != stats.Draws {
							t.Errorf("draw-path split %d + %d does not sum to draws %d", stats.DrawsFull, stats.DrawsTruncated, stats.Draws)
						}
					})
				}
			}
		}
	}
}
