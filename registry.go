package fairrank

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/rankers"
)

// The registry errors. Lookup failures wrap the ErrUnknown* sentinels so
// callers (and the HTTP layer, which maps them to 400) can classify them
// with errors.Is regardless of the name baked into the message.
var (
	// ErrUnknownAlgorithm reports an algorithm name absent from the
	// registry.
	ErrUnknownAlgorithm = errors.New("fairrank: unknown algorithm")
	// ErrUnknownNoise reports a noise mechanism name absent from the
	// registry.
	ErrUnknownNoise = errors.New("fairrank: unknown noise")
	// ErrDuplicateAlgorithm reports a Register call reusing a name.
	ErrDuplicateAlgorithm = errors.New("fairrank: algorithm already registered")
	// ErrDuplicateNoise reports a RegisterNoise call reusing a name.
	ErrDuplicateNoise = errors.New("fairrank: noise already registered")
)

// Instance is the assembled ranking problem handed to a Strategy: the
// central ranking, the scores, the group assignment derived from the
// candidates' Group strings (group ids are indexes into the sorted
// distinct group names), and the proportional prefix bounds widened by
// the resolved tolerance. It is a read-only view; accessors that return
// slices return copies.
type Instance struct {
	in rankers.Instance
}

// N returns the number of candidates.
func (it *Instance) N() int { return len(it.in.Initial) }

// Central returns the central ranking as candidate indices, best first.
// The indices refer to positions in the Request's Candidates slice.
func (it *Instance) Central() []int {
	return append([]int(nil), it.in.Initial...)
}

// Score returns the score of candidate i.
func (it *Instance) Score(i int) float64 { return it.in.Scores[i] }

// Group returns the group id of candidate i (0 ≤ id < NumGroups).
func (it *Instance) Group(i int) int { return it.in.Groups.Of(i) }

// NumGroups returns the number of distinct groups in the pool.
func (it *Instance) NumGroups() int { return it.in.Groups.NumGroups() }

// GroupSizes returns the number of candidates per group id.
func (it *Instance) GroupSizes() []int { return it.in.Groups.Sizes() }

// PrefixBounds returns the fairness bounds of the prefix of length k
// (1 ≤ k ≤ N): floor[g] and ceil[g] bound how many members of group g a
// fair ranking places in its first k positions.
func (it *Instance) PrefixBounds(k int) (floor, ceil []int) {
	return append([]int(nil), it.in.Bounds.Lower[k-1]...),
		append([]int(nil), it.in.Bounds.Upper[k-1]...)
}

// Strategy is a pluggable ranking algorithm: it post-processes an
// assembled Instance into a ranking, returned as a permutation of
// candidate indices, best first. The engine validates the returned
// permutation, so a defective Strategy surfaces as an error rather than
// a corrupted ranking.
//
// Implementations must be deterministic given the instance and the RNG
// stream, and safe for concurrent use (one Strategy value may serve many
// requests at once; per-request state belongs in Rank's locals).
type Strategy interface {
	Rank(in *Instance, rng *rand.Rand) ([]int, error)
}

// StrategyFunc adapts a plain function to the Strategy interface.
type StrategyFunc func(in *Instance, rng *rand.Rand) ([]int, error)

// Rank implements Strategy.
func (f StrategyFunc) Rank(in *Instance, rng *rand.Rand) ([]int, error) { return f(in, rng) }

// Factory builds the Strategy serving one resolved configuration. It is
// called once per NewRanker (to validate the configuration early) and
// once per request; it should be cheap and must not retain cfg-derived
// mutable state shared across requests.
type Factory func(cfg Config) (Strategy, error)

// AlgorithmInfo is the registry metadata of one algorithm: everything
// the serving catalog, the CLIs, and the engine's dispatch need to know
// about it. Name is the wire/config value; the rest is descriptive and
// drives validation and capability-aware dispatch.
type AlgorithmInfo struct {
	// Name is the value Config.Algorithm (and the HTTP "algorithm"
	// field) selects the algorithm by. Required, unique.
	Name string
	// Description summarizes the method and its source.
	Description string
	// AttributeBlind reports that the algorithm never reads the
	// protected attribute — the paper's robustness property.
	AttributeBlind bool
	// Deterministic reports that equal inputs yield equal rankings
	// regardless of the seed (the constraint-based algorithms are
	// deterministic at σ = 0; σ > 0 perturbs their constraints).
	Deterministic bool
	// SupportsSigma reports that the algorithm honors Config.Sigma
	// (Gaussian noise on its representation constraints).
	SupportsSigma bool
	// MinGroups and MaxGroups bound the group counts the algorithm can
	// rank; zero means unbounded on that side. The engine enforces them
	// before dispatch.
	MinGroups int
	MaxGroups int
	// Sampling marks the Algorithm-1 family: the engine runs its
	// amortized best-of-m noise loop (with cancellation between draws
	// and DoParallel fan-out) instead of calling a Strategy. Sampling
	// entries need no Factory.
	Sampling bool
	// BestOf reports that a Sampling algorithm honors Samples and
	// Criterion (best-of-m selection); false draws a single sample.
	BestOf bool
	// Noise pins a Sampling algorithm to one randomization mechanism;
	// empty honors Config.Noise and the per-request override.
	Noise Noise
	// Tunables lists the request fields the algorithm responds to, in
	// wire spelling ("theta", "samples", …); served verbatim by the
	// catalog so clients can introspect instead of hardcoding.
	Tunables []string
	// Guarantees declares the distributional properties the algorithm
	// advertises. The conformance kit (internal/conformance) asserts
	// them statistically — many draws over synthetic workloads, with
	// bootstrap confidence intervals — for every registered algorithm,
	// so a registration whose behavior does not live up to its metadata
	// fails verification instead of silently shipping. The zero value
	// advertises nothing beyond output validity.
	Guarantees Guarantees
}

// Guarantees are the statistically checkable promises of an algorithm's
// registry entry. Bounds are on means over many draws under the
// conformance measurement protocol: dispersion θ = 1, default samples
// and tolerance (0.1), the fair central ranking (CentralFairDCG) for
// sampling algorithms — the paper's robustness setting, noise around an
// ex-ante fair ranking — and the weakly fair central otherwise, with
// fairness audited over the top-min(10, n) prefix. The floors must hold
// on every workload of the conformance corpus, adversarial
// all-minority-at-bottom and heavily tied pools included: they are
// worst-covered-workload floors, not averages over friendly ones.
type Guarantees struct {
	// MinMeanPPfair lower-bounds the mean percentage of P-fair
	// positions (paper Definition 4) the algorithm achieves. 0 means no
	// fairness promise (baselines), skipping the check.
	MinMeanPPfair float64
	// MinMeanNDCG lower-bounds the mean NDCG of the produced rankings
	// against the score-ideal order — the paper's bounded-quality-loss
	// claim. 0 means no quality promise, skipping the check.
	MinMeanNDCG float64
}

// clone deep-copies the info so registry snapshots are immune to caller
// mutation of the Tunables slice.
func (a AlgorithmInfo) clone() AlgorithmInfo {
	a.Tunables = append([]string(nil), a.Tunables...)
	return a
}

// NoiseInfo is the registry metadata of one randomization mechanism.
type NoiseInfo struct {
	// Name is the value Config.Noise (and the HTTP "noise" field)
	// selects the mechanism by. Required, unique.
	Name string
	// Description summarizes the distribution.
	Description string
	// Truncated reports that the engine runs a dedicated truncated draw
	// path for this mechanism: top-k requests materialize only the
	// delivered prefix and count as DrawsTruncated. Mechanisms
	// registered through RegisterNoise draw full-length through the
	// generic sampler, so only built-ins set it; load harnesses use it
	// to predict the engine's per-noise draw-path counters without
	// hardcoding mechanism names.
	Truncated bool
}

// NoiseSampler builds a draw function for one request: central is the
// central ranking (candidate indices, best first — do not mutate), theta
// the resolved dispersion/concentration (θ = 0 must mean uniform). Each
// returned draw must be a fresh permutation of the same indices and the
// draw function must be safe for concurrent use, because DoParallel fans
// draws across goroutines.
type NoiseSampler func(central []int, theta float64) (func(*rand.Rand) []int, error)

type algorithmEntry struct {
	info    AlgorithmInfo
	factory Factory
}

var registry = struct {
	mu     sync.RWMutex
	algos  map[string]algorithmEntry
	noises map[string]struct {
		info    NoiseInfo
		sampler NoiseSampler
	}
}{
	algos: map[string]algorithmEntry{},
	noises: map[string]struct {
		info    NoiseInfo
		sampler NoiseSampler
	}{},
}

// Register adds an algorithm to the registry, making it constructible
// by name through NewRanker/Rank, servable by internal/service and
// fairrankd, and visible in the GET /v1/algorithms catalog and the CLI
// usage text. Safe for concurrent use, including concurrently with
// Ranker.Do; registrations are visible to Rankers constructed before
// them only at their next NewRanker — an existing Ranker's algorithm is
// fixed.
//
// Non-sampling algorithms require a factory. Sampling entries (the
// engine-managed best-of-m family) take no factory: their behavior is
// fully described by the metadata (BestOf, Noise).
func Register(info AlgorithmInfo, factory Factory) error {
	if info.Name == "" {
		return fmt.Errorf("fairrank: Register: empty algorithm name")
	}
	if !info.Sampling && factory == nil {
		return fmt.Errorf("fairrank: Register(%q): nil factory for a non-sampling algorithm", info.Name)
	}
	if info.Sampling && info.Noise != "" {
		if _, ok := LookupNoise(string(info.Noise)); !ok {
			return fmt.Errorf("%w %q (pinned by algorithm %q)", ErrUnknownNoise, info.Noise, info.Name)
		}
	}
	if info.MinGroups < 0 || info.MaxGroups < 0 || (info.MaxGroups > 0 && info.MinGroups > info.MaxGroups) {
		return fmt.Errorf("fairrank: Register(%q): invalid group bounds [%d, %d]", info.Name, info.MinGroups, info.MaxGroups)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.algos[info.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateAlgorithm, info.Name)
	}
	registry.algos[info.Name] = algorithmEntry{info: info.clone(), factory: factory}
	return nil
}

// MustRegister is Register, panicking on error; for package init blocks.
func MustRegister(info AlgorithmInfo, factory Factory) {
	if err := Register(info, factory); err != nil {
		panic(err)
	}
}

// RegisterNoise adds a randomization mechanism to the registry, making
// it selectable through Config.Noise / the per-request override for
// every sampling algorithm that does not pin its own mechanism, and
// visible in the serving catalog. Safe for concurrent use.
func RegisterNoise(info NoiseInfo, sampler NoiseSampler) error {
	if info.Name == "" {
		return fmt.Errorf("fairrank: RegisterNoise: empty noise name")
	}
	if sampler == nil {
		return fmt.Errorf("fairrank: RegisterNoise(%q): nil sampler", info.Name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.noises[info.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateNoise, info.Name)
	}
	registry.noises[info.Name] = struct {
		info    NoiseInfo
		sampler NoiseSampler
	}{info: info, sampler: sampler}
	return nil
}

// MustRegisterNoise is RegisterNoise, panicking on error.
func MustRegisterNoise(info NoiseInfo, sampler NoiseSampler) {
	if err := RegisterNoise(info, sampler); err != nil {
		panic(err)
	}
}

// Algorithms returns the metadata of every registered algorithm, sorted
// by name. The serving catalog, the CLI usage text, and the docs derive
// from this — it is the single source of truth for what is rankable.
func Algorithms() []AlgorithmInfo {
	registry.mu.RLock()
	out := make([]AlgorithmInfo, 0, len(registry.algos))
	for _, e := range registry.algos {
		out = append(out, e.info.clone())
	}
	registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupAlgorithm returns the metadata of one algorithm by name.
func LookupAlgorithm(name string) (AlgorithmInfo, bool) {
	registry.mu.RLock()
	e, ok := registry.algos[name]
	registry.mu.RUnlock()
	if !ok {
		return AlgorithmInfo{}, false
	}
	return e.info.clone(), true
}

// Noises returns the metadata of every registered noise mechanism,
// sorted by name.
func Noises() []NoiseInfo {
	registry.mu.RLock()
	out := make([]NoiseInfo, 0, len(registry.noises))
	for _, e := range registry.noises {
		out = append(out, e.info)
	}
	registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupNoise returns the metadata of one noise mechanism by name.
func LookupNoise(name string) (NoiseInfo, bool) {
	registry.mu.RLock()
	e, ok := registry.noises[name]
	registry.mu.RUnlock()
	if !ok {
		return NoiseInfo{}, false
	}
	return e.info, true
}

// lookupEntry resolves an algorithm name to its registry entry for the
// engine's dispatch.
func lookupEntry(name Algorithm) (algorithmEntry, error) {
	registry.mu.RLock()
	e, ok := registry.algos[string(name)]
	registry.mu.RUnlock()
	if !ok {
		return algorithmEntry{}, fmt.Errorf("%w %q", ErrUnknownAlgorithm, name)
	}
	return e, nil
}

// lookupSampler resolves a noise name to its sampler for the engine's
// generic sampling loop.
func lookupSampler(name Noise) (NoiseSampler, error) {
	registry.mu.RLock()
	e, ok := registry.noises[string(name)]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownNoise, name)
	}
	return e.sampler, nil
}

// checkGroups enforces the registry's group-count bounds before
// dispatch, so algorithms with structural requirements (GrBinaryIPF
// needs exactly two groups) fail with a uniform, catalog-explained
// error.
func (a AlgorithmInfo) checkGroups(numGroups int) error {
	if a.MinGroups > 0 && numGroups < a.MinGroups {
		return fmt.Errorf("fairrank: algorithm %q needs at least %d groups, got %d", a.Name, a.MinGroups, numGroups)
	}
	if a.MaxGroups > 0 && numGroups > a.MaxGroups {
		return fmt.Errorf("fairrank: algorithm %q supports at most %d groups, got %d", a.Name, a.MaxGroups, numGroups)
	}
	return nil
}
