package fairrank

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/fairdp"
	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/quality"
	"repro/internal/rankers"
)

// Candidate is one item to rank.
type Candidate struct {
	// ID identifies the candidate; must be unique and nonempty.
	ID string
	// Score is the quality/relevance score (higher ranks first).
	Score float64
	// Group is the protected attribute value used for fairness
	// constraints. All candidates must carry a nonempty Group when a
	// constraint-based algorithm runs; the Mallows algorithms never read
	// it.
	Group string
	// Attrs carries additional attribute values for evaluation, e.g.
	// attributes withheld from the ranking algorithms (see PPfairByAttr).
	Attrs map[string]string
	// Membership optionally states a probability distribution over group
	// names — the probabilistic protected attribute of Mehrotra & Vishnoi.
	// Keys extend the group universe; values must be finite, lie in
	// [0, 1], and sum to 1 (±1e-9); they are never renormalized. Groups
	// named by Group but absent from the map hold mass 0. A candidate
	// without Membership is treated as one-hot at its Group. Ranking
	// algorithms consume the hard Group; Membership feeds the expected
	// (probabilistic) fairness diagnostics.
	Membership map[string]float64
}

// Algorithm selects the post-processing method by its registered name.
// The constants below name the built-ins; Register adds more — the
// registry (see registry.go) is the single source of truth for what is
// rankable, and the serving catalog and CLI usage derive from it.
type Algorithm string

// The built-in post-processors. Each self-registers in builtins.go.
const (
	// AlgorithmMallows draws a single Mallows sample around the weakly
	// fair central ranking (the paper's Algorithm 1 with m = 1).
	AlgorithmMallows Algorithm = "mallows"
	// AlgorithmMallowsBest draws Samples Mallows draws and keeps the one
	// with the highest NDCG (Algorithm 1 with the NDCG criterion).
	AlgorithmMallowsBest Algorithm = "mallows-best"
	// AlgorithmDetConstSort runs Geyik et al.'s DetConstSort.
	AlgorithmDetConstSort Algorithm = "detconstsort"
	// AlgorithmIPF runs Wei et al.'s ApproxMultiValuedIPF
	// (footrule-optimal fair ranking).
	AlgorithmIPF Algorithm = "ipf"
	// AlgorithmGrBinary runs Wei et al.'s GrBinaryIPF (Kendall-tau
	// optimal; requires exactly two groups).
	AlgorithmGrBinary Algorithm = "grbinary"
	// AlgorithmILP computes the DCG-optimal (α,β)-fair ranking of the
	// paper's §IV-B integer program (solved exactly).
	AlgorithmILP Algorithm = "ilp"
	// AlgorithmScoreSorted ranks purely by score (no fairness).
	AlgorithmScoreSorted Algorithm = "score"
	// AlgorithmPlackettLuce draws Samples Plackett–Luce rankings around
	// the central (item weights e^{−θ·central rank}) and keeps the best
	// under the criterion — the paper's §VI beyond-Mallows direction as
	// a first-class algorithm.
	AlgorithmPlackettLuce Algorithm = "pl-best"
	// AlgorithmExPostFair samples a ranking whose every prefix satisfies
	// the (α,β) bounds — fairness holds ex post on each draw, not just in
	// expectation (Gorantla, Deshpande & Louis, IJCAI'23).
	AlgorithmExPostFair Algorithm = "expost-fair"
)

// DefaultAlgorithm is what an empty Config.Algorithm resolves to.
const DefaultAlgorithm = AlgorithmMallowsBest

// Noise selects the randomization mechanism the sampling algorithms
// (the Algorithm-1 family) draw from, by its registered name. The
// paper's §VI proposes exploring mechanisms beyond Mallows; the
// built-ins below cover that direction, and RegisterNoise adds more.
type Noise string

// The built-in noise mechanisms. Each self-registers in builtins.go.
const (
	// NoiseMallows draws from the Mallows model M(central, θ) — the
	// paper's mechanism and the default. It is served by the engine's
	// amortized (n, θ)-keyed insertion tables.
	NoiseMallows Noise = "mallows"
	// NoiseGMallows draws from the Fligner–Verducci generalized Mallows
	// model with per-position dispersion θ·0.97^j: the head of the
	// ranking stays close to the central while the tail mixes more.
	NoiseGMallows Noise = "gmallows"
	// NoisePlackettLuce draws a Plackett–Luce ranking with item weights
	// e^{−θ·(central rank)}; θ = 0 is uniform.
	NoisePlackettLuce Noise = "plackett-luce"
)

// Central selects the ranking the Mallows mechanism randomizes around
// (§IV-A: "the central ranking could be either the result of a rank
// aggregation problem or any ranking in general").
type Central string

// The available central rankings.
const (
	// CentralWeaklyFair is the paper's default: candidates in descending
	// score order, with the top-WeakK set adjusted to weak k-fairness.
	CentralWeaklyFair Central = "weak"
	// CentralFairDCG centres the noise on the DCG-optimal (α,β)-fair
	// ranking (the §IV-B program). Every prefix of the central satisfies
	// the constraints, so moderate noise keeps strong per-prefix
	// fairness even when scores are heavily group-biased, while the
	// randomization still hedges attributes the constraints never saw.
	CentralFairDCG Central = "fair"
	// CentralScoreOrder centres on the raw score order (no fairness in
	// the central; all fairness comes from the noise).
	CentralScoreOrder Central = "score"
)

// Criterion selects among Mallows samples (Algorithm 1's choose_ranking).
type Criterion string

// The available selection criteria.
const (
	// CriterionNDCG keeps the sample with the highest NDCG.
	CriterionNDCG Criterion = "ndcg"
	// CriterionKT keeps the sample with the smallest Kendall tau
	// distance to the central ranking.
	CriterionKT Criterion = "kt"
)

// DefaultSamples is the best-of-m draw count used when Config.Samples
// is zero.
const DefaultSamples = 15

// Config parameterizes Rank and NewRanker. The zero value is usable: it
// runs AlgorithmMallowsBest with the defaults below.
//
// Config carries legacy "zero means default" semantics: a zero Theta,
// Samples, Tolerance, or WeakK is read as "unset" and replaced by the
// documented default, so an explicit Theta = 0 (uniform noise) or
// Tolerance = 0 (exact proportional representation) cannot be expressed
// here. Those are legitimate settings; express them per request through
// Request's pointer-valued override fields, where nil means "inherit"
// and zero is a real value.
type Config struct {
	// Algorithm defaults to AlgorithmMallowsBest.
	Algorithm Algorithm
	// Central picks the Mallows central ranking; defaults to
	// CentralWeaklyFair. Only the Mallows algorithms read it.
	Central Central
	// Criterion picks how AlgorithmMallowsBest selects among samples:
	// CriterionNDCG (default) keeps the highest-quality sample,
	// CriterionKT the sample closest to the central ranking — the right
	// choice when the central is already fair (CentralFairDCG) and the
	// noise is there for robustness, not quality recovery.
	Criterion Criterion
	// Noise picks the randomization mechanism of the sampling
	// algorithms; defaults to NoiseMallows. Algorithms that pin their
	// own mechanism (AlgorithmPlackettLuce) and the non-sampling
	// algorithms ignore it. Request.Noise overrides it per request.
	Noise Noise
	// Theta is the noise dispersion/concentration (default 1): the
	// Mallows dispersion under the default mechanism, the base
	// per-position dispersion for gmallows, the weight-decay strength
	// for plackett-luce — every registered mechanism receives it. Zero
	// is read as "unset"; use Request.Theta for an explicit θ = 0
	// (uniform noise).
	Theta float64
	// Samples is the best-of-m draw count (default 15).
	Samples int
	// Tolerance widens the proportional representation constraints: each
	// group's prefix share must stay within its overall share ±
	// Tolerance. Default 0.1. Zero is read as "unset"; use
	// Request.Tolerance for explicit exact proportionality.
	Tolerance float64
	// WeakK is the prefix length of the weakly fair central ranking
	// (default min(10, number of candidates)).
	WeakK int
	// Sigma adds Gaussian noise to the representation constraints of the
	// attribute-aware algorithms, reproducing the paper's imperfect-
	// knowledge setting. Default 0; must not be negative or NaN.
	Sigma float64
	// Seed seeds the randomness; runs with equal seeds are identical.
	// Request.Seed overrides it per request.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.Algorithm == "" {
		c.Algorithm = DefaultAlgorithm
	}
	if c.Noise == "" {
		c.Noise = NoiseMallows
	}
	if c.Central == "" {
		c.Central = CentralWeaklyFair
	}
	if c.Criterion == "" {
		c.Criterion = CriterionNDCG
	}
	if c.Theta == 0 {
		c.Theta = 1
	}
	if c.Samples == 0 {
		c.Samples = DefaultSamples
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if c.WeakK == 0 {
		c.WeakK = 10
		if n < 10 {
			c.WeakK = n
		}
	}
	return c
}

// Rank post-processes candidates into a fair ranking with the configured
// algorithm and returns them in ranked order (best first). The input
// slice is not modified.
//
// Rank builds everything it needs from scratch on every call. When
// serving many requests with one configuration, construct a Ranker once
// instead: it produces identical rankings for identical seeds while
// amortizing the per-call setup.
//
// Rank is the legacy one-shot entry point, kept as a thin wrapper over
// Ranker.Do; it cannot express per-request overrides, cancellation, or
// return diagnostics. New code should construct a Ranker and call Do.
func Rank(candidates []Candidate, cfg Config) ([]Candidate, error) {
	r, err := NewRanker(cfg)
	if err != nil {
		return nil, err
	}
	res, err := r.Do(context.Background(), Request{Candidates: candidates, Seed: &cfg.Seed})
	if err != nil {
		return nil, err
	}
	return res.Ranking, nil
}

// buildInstance validates the candidates and assembles the internal
// ranking instance: groups from the distinct Group strings (sorted for
// determinism), proportional constraints widened by cfg.Tolerance, and
// the central ranking. cfg must already be resolved (defaults applied
// and overrides merged — see Ranker.resolve); buildInstance applies no
// defaulting of its own so that explicit zero overrides survive.
func buildInstance(candidates []Candidate, cfg Config) (rankers.Instance, error) {
	if len(candidates) == 0 {
		return rankers.Instance{}, fmt.Errorf("fairrank: no candidates")
	}
	seen := make(map[string]bool, len(candidates))
	groupIDs := map[string]int{}
	var groupNames []string
	for i, c := range candidates {
		if c.ID == "" {
			return rankers.Instance{}, fmt.Errorf("fairrank: candidate %d has empty ID", i)
		}
		if seen[c.ID] {
			return rankers.Instance{}, fmt.Errorf("fairrank: duplicate candidate ID %q", c.ID)
		}
		seen[c.ID] = true
		if math.IsNaN(c.Score) {
			// A NaN poisons every comparison downstream: it corrupts the
			// IDCG and makes the score-ideal sort order unspecified.
			return rankers.Instance{}, fmt.Errorf("fairrank: candidate %q has NaN score", c.ID)
		}
		if c.Group == "" {
			return rankers.Instance{}, fmt.Errorf("fairrank: candidate %q has empty Group", c.ID)
		}
		if _, ok := groupIDs[c.Group]; !ok {
			groupIDs[c.Group] = 0
			groupNames = append(groupNames, c.Group)
		}
		if c.Membership != nil {
			var sum float64
			for name, p := range c.Membership {
				if name == "" {
					return rankers.Instance{}, fmt.Errorf("fairrank: candidate %q membership names an empty group", c.ID)
				}
				if math.IsNaN(p) || p < 0 || p > 1 {
					return rankers.Instance{}, fmt.Errorf("fairrank: candidate %q membership for group %q is %v, want in [0,1]", c.ID, name, p)
				}
				sum += p
				if _, ok := groupIDs[name]; !ok {
					groupIDs[name] = 0
					groupNames = append(groupNames, name)
				}
			}
			// Probabilities are taken as stated, never renormalized: a
			// wrong sum is a caller bug, not a scaling choice.
			if math.Abs(sum-1) > 1e-9 {
				return rankers.Instance{}, fmt.Errorf("fairrank: candidate %q membership sums to %v, want 1", c.ID, sum)
			}
		}
	}
	sort.Strings(groupNames)
	for i, name := range groupNames {
		groupIDs[name] = i
	}
	assign := make([]int, len(candidates))
	scores := make(quality.Scores, len(candidates))
	for i, c := range candidates {
		assign[i] = groupIDs[c.Group]
		scores[i] = c.Score
	}
	gr, err := fairness.NewGroups(assign, len(groupNames))
	if err != nil {
		return rankers.Instance{}, err
	}
	// Lift hard labels plus any stated memberships into a distribution
	// per item. Nil unless some candidate carries a Membership: the
	// probabilistic diagnostics are opt-in, and requests without the
	// field keep their exact historical outputs.
	var prob *fairness.ProbGroups
	for _, c := range candidates {
		if c.Membership != nil {
			dist := make([][]float64, len(candidates))
			for i, c := range candidates {
				row := make([]float64, len(groupNames))
				if c.Membership == nil {
					row[groupIDs[c.Group]] = 1
				} else {
					for name, p := range c.Membership {
						row[groupIDs[name]] = p
					}
				}
				dist[i] = row
			}
			prob, err = fairness.NewProbGroups(dist, len(groupNames))
			if err != nil {
				return rankers.Instance{}, fmt.Errorf("fairrank: building membership distribution: %w", err)
			}
			break
		}
	}
	cons, err := fairness.Proportional(gr, cfg.Tolerance)
	if err != nil {
		return rankers.Instance{}, err
	}
	var central perm.Perm
	switch cfg.Central {
	case CentralWeaklyFair:
		central, err = fairness.WeaklyFairRanking(scores, gr, cons, cfg.WeakK)
	case CentralFairDCG:
		central, _, err = fairdp.Solve(scores, gr, cons.Table(len(candidates)), nil)
	case CentralScoreOrder:
		central = quality.Ideal(perm.Identity(len(candidates)), scores)
	default:
		return rankers.Instance{}, fmt.Errorf("fairrank: unknown central ranking %q", cfg.Central)
	}
	if err != nil {
		return rankers.Instance{}, fmt.Errorf("fairrank: building central ranking: %w", err)
	}
	return rankers.Instance{
		Initial: central,
		Scores:  scores,
		Groups:  gr,
		Bounds:  cons.Table(len(candidates)),
		Prob:    prob,
	}, nil
}

// NDCG returns the normalized discounted cumulative gain of the ranked
// candidates against the score-ideal order of the same candidates.
func NDCG(ranked []Candidate) (float64, error) {
	scores := make(quality.Scores, len(ranked))
	for i, c := range ranked {
		scores[i] = c.Score
	}
	return quality.NDCG(perm.Identity(len(ranked)), scores, len(ranked))
}

// KendallTau returns the number of candidate pairs on which the two
// rankings disagree. Both must rank exactly the same candidate IDs.
func KendallTau(a, b []Candidate) (int64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("fairrank: rankings of size %d vs %d", len(a), len(b))
	}
	posB := make(map[string]int, len(b))
	for r, c := range b {
		if _, dup := posB[c.ID]; dup {
			return 0, fmt.Errorf("fairrank: duplicate ID %q", c.ID)
		}
		posB[c.ID] = r
	}
	rel := make(perm.Perm, len(a))
	for r, c := range a {
		p, ok := posB[c.ID]
		if !ok {
			return 0, fmt.Errorf("fairrank: candidate %q missing from second ranking", c.ID)
		}
		rel[r] = p
	}
	if err := rel.Validate(); err != nil {
		return 0, fmt.Errorf("fairrank: rankings disagree on the candidate set: %w", err)
	}
	return rel.InversionCount(), nil
}

// PPfair returns the percentage of P-fair positions (Definition 4 of the
// paper) of the ranked candidates with respect to their Group attribute,
// under proportional constraints widened by tol.
func PPfair(ranked []Candidate, tol float64) (float64, error) {
	groups := make([]string, len(ranked))
	for i, c := range ranked {
		groups[i] = c.Group
	}
	return ppfairOf(ranked, groups, tol)
}

// PPfairTopK is PPfair restricted to the first k prefixes — the natural
// audit when only a shortlist of the ranking is consumed. Constraints
// are still proportional to the groups of the whole ranked pool.
func PPfairTopK(ranked []Candidate, k int, tol float64) (float64, error) {
	groups := make([]string, len(ranked))
	for i, c := range ranked {
		groups[i] = c.Group
	}
	gr, cons, err := groupsAndConstraints(groups, tol)
	if err != nil {
		return 0, err
	}
	return fairness.PPfairAt(perm.Identity(len(ranked)), gr, cons, k)
}

// ExpectedPPfairTopK is PPfairTopK under probabilistic group
// membership: each candidate's Membership distribution (one-hot at its
// hard Group when absent) replaces the hard label, the proportional
// constraints target expected group shares, and prefix counts are
// expected counts. On a pool whose memberships are all exactly one-hot
// the result is bit-identical to PPfairTopK — the library-level face of
// the fairness layer's one-hot equivalence guarantee.
func ExpectedPPfairTopK(ranked []Candidate, k int, tol float64) (float64, error) {
	if len(ranked) == 0 {
		return 0, fmt.Errorf("fairrank: empty ranking")
	}
	seen := map[string]bool{}
	var names []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for i, c := range ranked {
		if c.Group == "" {
			return 0, fmt.Errorf("fairrank: candidate %d has empty group", i)
		}
		add(c.Group)
		for name := range c.Membership {
			if name == "" {
				return 0, fmt.Errorf("fairrank: candidate %q membership names an empty group", c.ID)
			}
			add(name)
		}
	}
	sort.Strings(names)
	ids := make(map[string]int, len(names))
	for i, n := range names {
		ids[n] = i
	}
	dist := make([][]float64, len(ranked))
	for i, c := range ranked {
		row := make([]float64, len(names))
		if c.Membership == nil {
			row[ids[c.Group]] = 1
		} else {
			for name, p := range c.Membership {
				row[ids[name]] = p
			}
		}
		dist[i] = row
	}
	pg, err := fairness.NewProbGroups(dist, len(names))
	if err != nil {
		return 0, err
	}
	cons, err := fairness.ProportionalProb(pg, tol)
	if err != nil {
		return 0, err
	}
	return fairness.ExpectedPPfairAt(perm.Identity(len(ranked)), pg, cons, k)
}

// PPfairByAttr is PPfair evaluated against an attribute from
// Candidate.Attrs instead of Group — the paper's "unknown protected
// attribute" evaluation. Every candidate must carry the attribute.
func PPfairByAttr(ranked []Candidate, attr string, tol float64) (float64, error) {
	groups := make([]string, len(ranked))
	for i, c := range ranked {
		v, ok := c.Attrs[attr]
		if !ok || v == "" {
			return 0, fmt.Errorf("fairrank: candidate %q lacks attribute %q", c.ID, attr)
		}
		groups[i] = v
	}
	return ppfairOf(ranked, groups, tol)
}

// InfeasibleIndex returns the Two-Sided Infeasible Index (Definition 3)
// of the ranked candidates with respect to their Group attribute.
func InfeasibleIndex(ranked []Candidate, tol float64) (int, error) {
	groups := make([]string, len(ranked))
	for i, c := range ranked {
		groups[i] = c.Group
	}
	gr, cons, err := groupsAndConstraints(groups, tol)
	if err != nil {
		return 0, err
	}
	return fairness.TwoSidedInfeasibleIndex(perm.Identity(len(ranked)), gr, cons)
}

func ppfairOf(ranked []Candidate, groups []string, tol float64) (float64, error) {
	gr, cons, err := groupsAndConstraints(groups, tol)
	if err != nil {
		return 0, err
	}
	return fairness.PPfair(perm.Identity(len(ranked)), gr, cons)
}

func groupsAndConstraints(groups []string, tol float64) (*fairness.Groups, *fairness.Constraints, error) {
	if len(groups) == 0 {
		return nil, nil, fmt.Errorf("fairrank: empty ranking")
	}
	ids := map[string]int{}
	var names []string
	for i, g := range groups {
		if g == "" {
			return nil, nil, fmt.Errorf("fairrank: candidate %d has empty group", i)
		}
		if _, ok := ids[g]; !ok {
			ids[g] = 0
			names = append(names, g)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		ids[n] = i
	}
	assign := make([]int, len(groups))
	for i, g := range groups {
		assign[i] = ids[g]
	}
	gr, err := fairness.NewGroups(assign, len(names))
	if err != nil {
		return nil, nil, err
	}
	cons, err := fairness.Proportional(gr, tol)
	if err != nil {
		return nil, nil, err
	}
	return gr, cons, nil
}
