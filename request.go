package fairrank

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/fairness"
	"repro/internal/perm"
	"repro/internal/pl"
	"repro/internal/quality"
	"repro/internal/rankdist"
	"repro/internal/rankers"
)

// Request asks a Ranker for one fair ranking. Candidates is the pool to
// rank; every other field is a per-request override of the Ranker's
// Config. Override fields are pointers so that an explicit zero is a
// real value rather than "unset": Theta = 0 is uniform noise (every
// permutation equally likely) and Tolerance = 0 is exact proportional
// representation — both legitimate settings that Config's zero-means-
// default convention cannot express. A nil override inherits the
// Config value (after Config's own defaulting).
//
// Per-request Theta is cheap: the Ranker's amortized Mallows tables are
// keyed by (pool size, θ), so requests with different dispersions share
// the cache instead of invalidating it.
type Request struct {
	// Candidates is the pool to rank; must be nonempty with unique,
	// nonempty IDs, nonempty Groups, and non-NaN scores.
	Candidates []Candidate
	// Theta overrides Config.Theta (Mallows dispersion); must be ≥ 0.
	// 0 draws uniformly random permutations.
	Theta *float64
	// Samples overrides Config.Samples (best-of-m draw count); ≥ 1.
	Samples *int
	// Criterion overrides Config.Criterion when nonempty. The empty
	// string inherits (no Criterion value is empty, so a string field
	// carries no zero ambiguity).
	Criterion Criterion
	// Noise overrides Config.Noise when nonempty: the registered
	// randomization mechanism the sampling algorithms draw from.
	// Algorithms that pin their own mechanism ignore it.
	Noise Noise
	// Tolerance overrides Config.Tolerance (proportional-constraint
	// slack); must be ≥ 0. 0 demands exact proportionality.
	Tolerance *float64
	// TopK truncates Result.Ranking to the best TopK candidates and
	// scopes the fairness audit to those prefixes; must be ≥ 1 and is
	// clamped to the pool size. Nil returns the full ranking.
	TopK *int
	// Seed overrides Config.Seed. Equal resolved requests with equal
	// seeds produce equal rankings.
	Seed *int64
}

// Result is a ranking plus the diagnostics of how it was produced,
// computed from state the engine already holds — no second ranking or
// evaluation pass over the pool.
type Result struct {
	// Ranking lists the candidates best first, truncated to the
	// request's TopK when set.
	Ranking []Candidate
	// Diagnostics reports the resolved parameters and the self-audit of
	// the ranking.
	Diagnostics Diagnostics
}

// Diagnostics reports the resolved request parameters (after override
// resolution) and quality/fairness measurements of the returned ranking.
type Diagnostics struct {
	// Algorithm, Central, Criterion, Theta, Samples, Tolerance, and Seed
	// are the values the request actually ran with, after applying
	// Config defaults and Request overrides.
	Algorithm Algorithm
	Central   Central
	Criterion Criterion
	Theta     float64
	Samples   int
	Tolerance float64
	Seed      int64
	// Noise is the randomization mechanism the request actually drew
	// from (after resolving the algorithm's pinned mechanism and the
	// request override); empty for the deterministic algorithms, which
	// draw nothing.
	Noise Noise
	// TopK is the length of Result.Ranking (the pool size when the
	// request set no truncation).
	TopK int
	// NDCG measures the delivered ranking against the score-ideal order:
	// the full-ranking NDCG when the request set no truncation, NDCG@TopK
	// (pool-wide ideal as normalizer) when it did — the truncated draw
	// path never materializes the ranks a TopK response discards, so
	// every quality measurement is scoped to what was delivered. For the
	// NDCG selection criterion this is the winning sample's selection
	// score, reused rather than recomputed.
	NDCG float64
	// DrawsEvaluated counts Mallows samples drawn and scored: Samples
	// for mallows-best, 1 for mallows, 0 for the deterministic
	// algorithms.
	DrawsEvaluated int
	// CentralKendallTau counts Kendall tau pairs the delivered ranking
	// orders against the central ranking the noise was centred on: the
	// full Kendall tau distance when the request set no truncation,
	// otherwise the discordant pairs within the delivered prefix (for
	// the KT criterion, the winning sample's selection score, reused).
	CentralKendallTau int64
	// PPfair is the percentage of P-fair positions (Definition 4) of
	// the first TopK prefixes under the resolved tolerance, audited
	// against the Group attribute.
	PPfair float64
	// InfeasibleIndex is the Two-Sided Infeasible Index (Definition 3)
	// over the first TopK prefixes.
	InfeasibleIndex int
	// Probabilistic carries the expected-fairness audit and is only
	// present when at least one candidate stated a Membership
	// distribution; requests with hard labels only are unchanged. When
	// every Membership is one-hot, its metrics equal the deterministic
	// PPfair/InfeasibleIndex bit for bit.
	Probabilistic *ProbDiagnostics
}

// ProbDiagnostics audits the delivered ranking against the candidates'
// Membership distributions: each prefix count is the expected number of
// members under the stated probabilities rather than a hard tally.
type ProbDiagnostics struct {
	// ExpectedPPfair is PPfair with expected prefix counts in place of
	// hard counts, over the first TopK prefixes.
	ExpectedPPfair float64
	// ExpectedInfeasibleIndex counts the first TopK prefixes whose
	// expected counts breach the (α,β) bounds.
	ExpectedInfeasibleIndex int
	// ExpectedDisparateExposure is the worst group's expected-exposure
	// share divided by its expected share of the delivered prefix
	// (1 = perfectly proportional attention), under the standard
	// 1/log₂(1+rank) discount.
	ExpectedDisparateExposure float64
	// ExpectedExposureGap is the largest |expected exposure share −
	// expected prefix share| over groups under the same discount.
	ExpectedExposureGap float64
}

// Do serves one request: it resolves the request's overrides against the
// Ranker's Config, ranks the candidates, and returns the ranking with
// its diagnostics. Sampling is sequential from a single RNG stream, so
// for equal resolved parameters and seeds Do returns exactly what the
// legacy Ranker.Rank and package-level Rank return.
//
// ctx cancellation and deadlines are honored between Mallows draws; a
// cancelled context aborts the best-of-m loop promptly with ctx.Err().
// The deterministic algorithms check ctx only before dispatch.
func (r *Ranker) Do(ctx context.Context, req Request) (*Result, error) {
	return r.do(ctx, req, 0)
}

// DoParallel is Do with the best-of-m Mallows draws fanned out over up
// to workers goroutines. The result is deterministic for equal seeds and
// independent of workers — draw i uses its own RNG seeded by a mix of
// (seed, i) — but the draws consume different random streams than Do's
// single sequential stream, so for one seed Do and DoParallel return
// different (identically distributed) rankings. Requests without a
// sampling loop fall back to the sequential path.
func (r *Ranker) DoParallel(ctx context.Context, req Request, workers int) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	return r.do(ctx, req, workers)
}

// do is the single serving path behind Do (workers = 0, sequential
// stream) and DoParallel (workers ≥ 1, per-draw derived streams).
func (r *Ranker) do(ctx context.Context, req Request, workers int) (*Result, error) {
	r.statRequests.Add(1)
	cfg, topK, err := r.resolve(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in, err := buildInstance(req.Candidates, cfg)
	if err != nil {
		return nil, err
	}
	if err := r.entry.info.checkGroups(in.Groups.NumGroups()); err != nil {
		return nil, err
	}
	out, score, scored, draws, noise, err := r.rankInstance(ctx, in, cfg, topK, workers)
	if err != nil {
		return nil, err
	}
	diag, err := diagnose(in, cfg, out, topK, score, scored, draws, noise)
	if err != nil {
		return nil, err
	}
	return &Result{
		Ranking:     pickCandidates(req.Candidates, out[:topK]),
		Diagnostics: diag,
	}, nil
}

// rankInstance ranks one assembled instance under a resolved
// configuration — the per-draw core shared by do and the multi-draw
// Sample hook, which builds the instance once and calls this per draw.
// It returns the chosen ranking — full-length, or just the delivered
// prefix when the truncated draw path served a TopK request — the
// winning selection score (when a best-of criterion ran), the draw
// count, and the noise mechanism actually drawn from (empty for
// non-sampling algorithms).
func (r *Ranker) rankInstance(ctx context.Context, in rankers.Instance, cfg Config, topK, workers int) (perm.Perm, float64, bool, int, Noise, error) {
	entry := r.entry
	var (
		out       perm.Perm
		score     float64
		scored    bool
		draws     int
		noise     Noise
		truncated bool
		err       error
	)
	if entry.info.Sampling {
		// The engine-managed Algorithm-1 family: best-of-m draws from
		// the resolved noise mechanism around the central ranking, with
		// cancellation between draws and optional parallel fan-out.
		samples := 1
		if entry.info.BestOf {
			samples = cfg.Samples
		}
		noise = entry.info.Noise
		if noise == "" {
			noise = cfg.Noise
		}
		switch {
		case noise == NoiseMallows:
			// The default mechanism keeps its dedicated path: amortized
			// (n, θ)-keyed insertion tables and pooled scratch buffers,
			// bit-identical to the pre-registry engine — and, for TopK
			// requests, the lazy truncated sampler that never
			// materializes ranks the response discards.
			truncated = topK < len(in.Initial) && !r.forceFullDraws
			if workers > 0 && samples > 1 {
				out, score, scored, err = r.sampleParallel(ctx, in, cfg, samples, topK, truncated, workers)
			} else {
				rng := r.getRNG(cfg.Seed)
				out, score, scored, err = r.sampleSequential(ctx, in, cfg, samples, entry.info.BestOf, topK, truncated, rng)
				r.rngs.Put(rng)
			}
		case noise == NoisePlackettLuce && !r.forceFullDraws:
			// Dedicated Plackett–Luce path: pooled log-weight and Gumbel
			// scratch, block-filled uniforms, and — on TopK requests —
			// the Gumbel top-k sampler. Stream- and bit-identical to the
			// registry mechanism for equal seeds; forceFullDraws routes
			// to the generic registry path below as the reference.
			truncated = topK < len(in.Initial)
			if workers > 0 && samples > 1 {
				out, score, scored, err = r.plParallel(ctx, in, cfg, samples, topK, truncated, workers)
			} else {
				rng := r.getRNG(cfg.Seed)
				out, score, scored, err = r.plSequential(ctx, in, cfg, samples, entry.info.BestOf, topK, truncated, rng)
				r.rngs.Put(rng)
			}
		case noise == NoiseGMallows && !r.forceFullDraws:
			// Dedicated generalized-Mallows path: per-step tables cached
			// per (n, θ) for the built-in geometric-decay schedule, with
			// the bounded-window truncated sampler on TopK requests.
			truncated = topK < len(in.Initial)
			if workers > 0 && samples > 1 {
				out, score, scored, err = r.gmParallel(ctx, in, cfg, samples, topK, truncated, workers)
			} else {
				rng := r.getRNG(cfg.Seed)
				out, score, scored, err = r.gmSequential(ctx, in, cfg, samples, entry.info.BestOf, topK, truncated, rng)
				r.rngs.Put(rng)
			}
		default:
			// Third-party mechanisms — and, under forceFullDraws, the
			// reference path the built-in fast paths are checked against:
			// fresh validated draws straight from the noise registry.
			sampler, serr := lookupSampler(noise)
			if serr != nil {
				return nil, 0, false, 0, "", serr
			}
			if workers > 0 && samples > 1 {
				out, score, scored, err = r.noiseParallel(ctx, in, cfg, noise, sampler, samples, topK, workers)
			} else {
				rng := r.getRNG(cfg.Seed)
				out, score, scored, err = r.noiseSequential(ctx, in, cfg, noise, sampler, samples, entry.info.BestOf, topK, rng)
				r.rngs.Put(rng)
			}
		}
		if err != nil {
			return nil, 0, false, 0, "", err
		}
		draws = samples
		r.statDraws.Add(int64(draws))
		if truncated {
			r.statDrawsTruncated.Add(int64(draws))
			r.truncCounter(noise).Add(int64(draws))
		} else {
			r.statDrawsFull.Add(int64(draws))
		}
	} else {
		strat, serr := entry.factory(cfg)
		if serr != nil {
			return nil, 0, false, 0, "", serr
		}
		rng := r.getRNG(cfg.Seed)
		idx, rerr := strat.Rank(&Instance{in: in}, rng)
		r.rngs.Put(rng)
		if rerr != nil {
			return nil, 0, false, 0, "", fmt.Errorf("fairrank: %s: %w", entry.info.Name, rerr)
		}
		out = perm.Perm(idx)
		// Validate Strategy output uniformly: a defective (possibly
		// third-party) strategy must surface as an error, never as a
		// corrupted ranking or an out-of-range panic in the audit.
		if len(out) != len(in.Initial) {
			return nil, 0, false, 0, "", fmt.Errorf("fairrank: %s: returned %d indices for %d candidates", entry.info.Name, len(out), len(in.Initial))
		}
		if err := out.Validate(); err != nil {
			return nil, 0, false, 0, "", fmt.Errorf("fairrank: %s: invalid ranking: %w", entry.info.Name, err)
		}
	}
	return out, score, scored, draws, noise, nil
}

// resolve merges the Ranker's Config (with its defaults applied for the
// request's pool size) and the request's overrides, validating each
// override. The resolution order is: Request field if set, else Config
// field if nonzero, else the built-in default.
func (r *Ranker) resolve(req Request) (Config, int, error) {
	n := len(req.Candidates)
	cfg := r.cfg.withDefaults(n)
	if req.Theta != nil {
		if math.IsNaN(*req.Theta) || *req.Theta < 0 {
			return Config{}, 0, fmt.Errorf("fairrank: request dispersion θ = %v, want ≥ 0", *req.Theta)
		}
		cfg.Theta = *req.Theta
	}
	if req.Samples != nil {
		if *req.Samples < 1 {
			return Config{}, 0, fmt.Errorf("fairrank: request samples = %d, want ≥ 1", *req.Samples)
		}
		cfg.Samples = *req.Samples
	}
	if req.Criterion != "" {
		switch req.Criterion {
		case CriterionNDCG, CriterionKT:
		default:
			return Config{}, 0, fmt.Errorf("fairrank: unknown criterion %q", req.Criterion)
		}
		cfg.Criterion = req.Criterion
	}
	if req.Noise != "" {
		if _, ok := LookupNoise(string(req.Noise)); !ok {
			return Config{}, 0, fmt.Errorf("%w %q", ErrUnknownNoise, req.Noise)
		}
		cfg.Noise = req.Noise
	}
	if req.Tolerance != nil {
		if math.IsNaN(*req.Tolerance) || *req.Tolerance < 0 {
			return Config{}, 0, fmt.Errorf("fairrank: request tolerance %v, want ≥ 0", *req.Tolerance)
		}
		cfg.Tolerance = *req.Tolerance
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	topK := n
	if req.TopK != nil {
		if *req.TopK < 1 {
			return Config{}, 0, fmt.Errorf("fairrank: request top-k = %d, want ≥ 1", *req.TopK)
		}
		if *req.TopK < topK {
			topK = *req.TopK
		}
	}
	return cfg, topK, nil
}

// drawFunc draws one sample into dst — a full-length buffer from the
// per-size scratch pool — consuming rng, and returns the written
// ranking: the full permutation, or just the top-k prefix when the
// truncated path serves the request.
type drawFunc func(dst perm.Perm, rng *rand.Rand) perm.Perm

// drawSequential runs the amortized best-of-m loop on one RNG stream
// for any dedicated draw path: same selection as the pre-registry
// engine, bit for bit, plus a cancellation check between draws. It
// returns the chosen ranking and, when a selection criterion ran, its
// winning score.
func (r *Ranker) drawSequential(ctx context.Context, in rankers.Instance, cfg Config, samples int, bestOf bool, topK int, pool *perm.Pool, draw drawFunc, rng *rand.Rand) (perm.Perm, float64, bool, error) {
	// The scratch pool hands out full-length buffers; the truncated path
	// just fills fewer slots of the same recycled buffers.
	cur, best := pool.Get(), pool.Get()
	defer func() { pool.Put(cur); pool.Put(best) }()
	best = draw(best, rng)
	if !bestOf {
		// Algorithm 1 with m = 1: keep the first (only) draw.
		return best.Clone(), 0, false, nil
	}
	maker, err := r.criterionAt(cfg, in, topK)
	if err != nil {
		return nil, 0, false, err
	}
	score := maker()
	bestScore, err := score(best)
	if err != nil {
		return nil, 0, false, err
	}
	for i := 1; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
		cur = draw(cur, rng)
		v, err := score(cur)
		if err != nil {
			return nil, 0, false, err
		}
		if v > bestScore {
			// Swap rather than copy: cur becomes the kept sample, best
			// becomes the scratch the next draw overwrites.
			best, cur = cur, best
			bestScore = v
		}
	}
	return best.Clone(), bestScore, true, nil
}

// sampleSequential runs the best-of-m Mallows loop on one RNG stream:
// amortized (n, θ) tables, pooled scratch, and — when truncated is
// set — the lazy top-k sampler instead of the full permutation. The
// draws consume the RNG stream identically either way, and the
// selection criterion is prefix-scoped in both cases, so the two paths
// pick bit-identical winning prefixes for equal seeds.
func (r *Ranker) sampleSequential(ctx context.Context, in rankers.Instance, cfg Config, samples int, bestOf bool, topK int, truncated bool, rng *rand.Rand) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	tab, err := st.tables()
	if err != nil {
		return nil, 0, false, err
	}
	model := r.model(in, cfg)
	draw := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
		if truncated {
			return model.SampleTopKInto(tab, topK, dst, rng)
		}
		return model.SampleInto(tab, dst, rng)
	}
	return r.drawSequential(ctx, in, cfg, samples, bestOf, topK, st.scratch, draw, rng)
}

// plSequential runs the best-of-m Plackett–Luce loop on one RNG stream
// through the dedicated zero-allocation path: the log-weight vector is
// built once per request on pooled float scratch with the exact
// registry-mechanism expression, each draw perturbs it with block-
// filled Gumbel noise on pooled sampler scratch, and TopK requests
// select through the bounded k-slot heap instead of a full sort. Stream
// consumption matches the registry sampler draw for draw, so equal
// seeds yield bit-identical rankings (prefixes, when truncated).
func (r *Ranker) plSequential(ctx context.Context, in rankers.Instance, cfg Config, samples int, bestOf bool, topK int, truncated bool, rng *rand.Rand) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	logwBuf := st.getFloats()
	defer st.putFloats(logwBuf)
	logw := plLogWeights(*logwBuf, in, cfg.Theta)
	sc := st.getPL()
	defer st.putPL(sc)
	draw := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
		if truncated {
			return pl.SampleTopKInto(logw, topK, dst, sc, rng)
		}
		return pl.SampleLogWeightsInto(logw, dst, sc, rng)
	}
	return r.drawSequential(ctx, in, cfg, samples, bestOf, topK, st.scratch, draw, rng)
}

// plLogWeights fills buf with the Plackett–Luce log-weights of the
// instance: the item at central rank rk gets −θ·rk, the exact
// expression core.PlackettLuceNoise builds, so the dedicated path's
// Gumbel utilities match the registry reference bit for bit.
func plLogWeights(buf []float64, in rankers.Instance, theta float64) []float64 {
	logw := buf[:len(in.Initial)]
	for rk, item := range in.Initial {
		logw[item] = -theta * float64(rk)
	}
	return logw
}

// gmSequential runs the best-of-m generalized-Mallows loop on one RNG
// stream through the dedicated path: per-step displacement tables for
// the built-in geometric-decay schedule, cached per (n, θ), and — on
// TopK requests — the bounded-window truncated sampler with its miss
// thresholds precomputed once per request on pooled float scratch.
// Stream consumption matches the registry sampler draw for draw, so
// equal seeds yield bit-identical rankings (prefixes, when truncated).
func (r *Ranker) gmSequential(ctx context.Context, in rankers.Instance, cfg Config, samples int, bestOf bool, topK int, truncated bool, rng *rand.Rand) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	gt, err := st.gtables()
	if err != nil {
		return nil, 0, false, err
	}
	var thresh []float64
	if truncated {
		buf := st.getFloats()
		defer st.putFloats(buf)
		thresh = gt.MissThresholds(topK, *buf)
	}
	draw := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
		if truncated {
			return gt.SampleTopKInto(in.Initial, topK, thresh, dst, rng)
		}
		return gt.SampleInto(in.Initial, dst, rng)
	}
	return r.drawSequential(ctx, in, cfg, samples, bestOf, topK, st.scratch, draw, rng)
}

// noiseSequential is sampleSequential for every mechanism beyond the
// amortized Mallows path: it builds the draw function from the noise
// registry and runs the same best-of-m selection on one RNG stream.
// Every draw is validated, so a defective (possibly third-party)
// mechanism surfaces as an error instead of corrupting the selection.
func (r *Ranker) noiseSequential(ctx context.Context, in rankers.Instance, cfg Config, noise Noise, sampler NoiseSampler, samples int, bestOf bool, topK int, rng *rand.Rand) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	draw, err := sampler(in.Initial, cfg.Theta)
	if err != nil {
		return nil, 0, false, fmt.Errorf("fairrank: noise %q: %w", noise, err)
	}
	next := func() (perm.Perm, error) { return checkedDraw(noise, draw, len(in.Initial), rng) }
	best, err := next()
	if err != nil {
		return nil, 0, false, err
	}
	if !bestOf {
		return best, 0, false, nil
	}
	maker, err := r.criterionAt(cfg, in, topK)
	if err != nil {
		return nil, 0, false, err
	}
	score := maker()
	bestScore, err := score(best)
	if err != nil {
		return nil, 0, false, err
	}
	for i := 1; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
		cur, err := next()
		if err != nil {
			return nil, 0, false, err
		}
		v, err := score(cur)
		if err != nil {
			return nil, 0, false, err
		}
		if v > bestScore {
			best, bestScore = cur, v
		}
	}
	return best, bestScore, true, nil
}

// checkedDraw takes one draw from a registered noise mechanism and
// validates it as a full permutation of the pool.
func checkedDraw(noise Noise, draw func(*rand.Rand) []int, n int, rng *rand.Rand) (perm.Perm, error) {
	p := perm.Perm(draw(rng))
	if len(p) != n {
		return nil, fmt.Errorf("fairrank: noise %q: drew %d indices for %d candidates", noise, len(p), n)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fairrank: noise %q: invalid draw: %w", noise, err)
	}
	return p, nil
}

// noiseParallel fans the generic-noise best-of-m draws over up to
// workers goroutines with the same per-draw derived RNG streams as
// sampleParallel: the result depends only on the resolved seed, never
// on the worker count. The registered draw function is shared across
// workers (the NoiseSampler contract requires concurrency safety).
func (r *Ranker) noiseParallel(ctx context.Context, in rankers.Instance, cfg Config, noise Noise, sampler NoiseSampler, samples, topK, workers int) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	maker, err := r.criterionAt(cfg, in, topK)
	if err != nil {
		return nil, 0, false, err
	}
	draw, err := sampler(in.Initial, cfg.Theta)
	if err != nil {
		return nil, 0, false, fmt.Errorf("fairrank: noise %q: %w", noise, err)
	}
	if workers > samples {
		workers = samples
	}
	type drawResult struct {
		score float64
		idx   int
		p     perm.Perm
		err   error
	}
	results := make([]drawResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * samples / workers
		hi := (w + 1) * samples / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := r.rngs.Get().(*rand.Rand)
			defer r.rngs.Put(rng)
			score := maker()
			local := drawResult{idx: -1}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					results[w] = drawResult{err: err}
					return
				}
				rng.Seed(mixSeed(cfg.Seed, i))
				cur, err := checkedDraw(noise, draw, len(in.Initial), rng)
				if err != nil {
					results[w] = drawResult{err: err}
					return
				}
				v, err := score(cur)
				if err != nil {
					results[w] = drawResult{err: err}
					return
				}
				if local.idx < 0 || v > local.score {
					local = drawResult{score: v, idx: i, p: cur}
				}
			}
			results[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	winner := drawResult{idx: -1}
	for _, d := range results {
		if d.err != nil {
			return nil, 0, false, d.err
		}
		if winner.idx < 0 || d.score > winner.score || (d.score == winner.score && d.idx < winner.idx) {
			winner = d
		}
	}
	return winner.p, winner.score, true, nil
}

// drawParallel fans the best-of-m draws of any dedicated draw path over
// up to workers goroutines. Draw i uses its own RNG seeded by
// mixSeed(seed, i) and score ties break toward the lowest i, so the
// result depends only on the resolved seed, never on the worker count.
// Each worker checks ctx between draws. mkDraw mints one draw function
// per worker — private sampler scratch lives in its closure — plus an
// optional release hook run when the worker finishes.
func (r *Ranker) drawParallel(ctx context.Context, in rankers.Instance, cfg Config, samples, topK, workers int, pool *perm.Pool, mkDraw func() (drawFunc, func())) (perm.Perm, float64, bool, error) {
	maker, err := r.criterionAt(cfg, in, topK)
	if err != nil {
		return nil, 0, false, err
	}
	if workers > samples {
		workers = samples
	}
	type draw struct {
		score float64
		idx   int
		p     perm.Perm
		err   error
	}
	results := make([]draw, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous index chunks: worker w owns draws [lo, hi).
		lo := w * samples / workers
		hi := (w + 1) * samples / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := r.rngs.Get().(*rand.Rand)
			defer r.rngs.Put(rng)
			cur, best := pool.Get(), pool.Get()
			defer func() { pool.Put(cur); pool.Put(best) }()
			d, done := mkDraw()
			if done != nil {
				defer done()
			}
			score := maker()
			local := draw{idx: -1}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					results[w] = draw{err: err}
					return
				}
				rng.Seed(mixSeed(cfg.Seed, i))
				cur = d(cur, rng)
				v, err := score(cur)
				if err != nil {
					results[w] = draw{err: err}
					return
				}
				if local.idx < 0 || v > local.score {
					best, cur = cur, best
					local = draw{score: v, idx: i}
				}
			}
			local.p = best.Clone()
			results[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	winner := draw{idx: -1}
	for _, d := range results {
		if d.err != nil {
			return nil, 0, false, d.err
		}
		if winner.idx < 0 || d.score > winner.score || (d.score == winner.score && d.idx < winner.idx) {
			winner = d
		}
	}
	return winner.p, winner.score, true, nil
}

// sampleParallel fans the best-of-m Mallows draws over up to workers
// goroutines. When truncated is set, every worker draws through the
// lazy top-k sampler; each per-draw derived stream is consumed
// identically to the full path's, and the prefix-scoped criterion makes
// the winning prefix bit-identical to the reference path's for equal
// seeds.
func (r *Ranker) sampleParallel(ctx context.Context, in rankers.Instance, cfg Config, samples, topK int, truncated bool, workers int) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	tab, err := st.tables()
	if err != nil {
		return nil, 0, false, err
	}
	model := r.model(in, cfg)
	draw := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
		if truncated {
			return model.SampleTopKInto(tab, topK, dst, rng)
		}
		return model.SampleInto(tab, dst, rng)
	}
	// The Mallows samplers keep no per-worker scratch beyond the pooled
	// permutation buffers drawParallel already manages.
	return r.drawParallel(ctx, in, cfg, samples, topK, workers, st.scratch, func() (drawFunc, func()) { return draw, nil })
}

// plParallel fans the best-of-m Plackett–Luce draws over up to workers
// goroutines through the dedicated path: the log-weight vector is built
// once and shared read-only, each worker draws on its own pooled Gumbel
// scratch, and per-draw derived streams match the generic registry
// path's draw for draw, so equal seeds yield bit-identical results.
func (r *Ranker) plParallel(ctx context.Context, in rankers.Instance, cfg Config, samples, topK int, truncated bool, workers int) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	logwBuf := st.getFloats()
	defer st.putFloats(logwBuf)
	logw := plLogWeights(*logwBuf, in, cfg.Theta)
	mk := func() (drawFunc, func()) {
		sc := st.getPL()
		d := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
			if truncated {
				return pl.SampleTopKInto(logw, topK, dst, sc, rng)
			}
			return pl.SampleLogWeightsInto(logw, dst, sc, rng)
		}
		return d, func() { st.putPL(sc) }
	}
	return r.drawParallel(ctx, in, cfg, samples, topK, workers, st.scratch, mk)
}

// gmParallel fans the best-of-m generalized-Mallows draws over up to
// workers goroutines through the dedicated path: the per-step tables
// and (when truncated) the miss-threshold vector are built once and
// shared read-only across workers.
func (r *Ranker) gmParallel(ctx context.Context, in rankers.Instance, cfg Config, samples, topK int, truncated bool, workers int) (perm.Perm, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	st := r.state(len(in.Initial), cfg.Theta)
	gt, err := st.gtables()
	if err != nil {
		return nil, 0, false, err
	}
	var thresh []float64
	if truncated {
		buf := st.getFloats()
		defer st.putFloats(buf)
		thresh = gt.MissThresholds(topK, *buf)
	}
	draw := func(dst perm.Perm, rng *rand.Rand) perm.Perm {
		if truncated {
			return gt.SampleTopKInto(in.Initial, topK, thresh, dst, rng)
		}
		return gt.SampleInto(in.Initial, dst, rng)
	}
	return r.drawParallel(ctx, in, cfg, samples, topK, workers, st.scratch, func() (drawFunc, func()) { return draw, nil })
}

// diagnose assembles the Result diagnostics from state the serving path
// already holds: the instance's scores, central ranking, groups, and
// materialized prefix bounds, plus the selection score when the
// best-of-m loop computed one. One O(topK·groups) violation scan audits
// both PPfair and the infeasible index; NDCG and the central Kendall tau
// are reused from the selection criterion when it already computed them.
//
// Every measurement is scoped to the delivered prefix out[:topK] — out
// itself may be full-length or already just the prefix, depending on
// which draw path served the request, and the diagnostics must not
// depend on which it was. Untruncated requests (topK = pool size) keep
// the exact full-ranking arithmetic of the pre-truncation engine.
func diagnose(in rankers.Instance, cfg Config, out perm.Perm, topK int, score float64, scored bool, draws int, noise Noise) (Diagnostics, error) {
	d := Diagnostics{
		Algorithm:      cfg.Algorithm,
		Central:        cfg.Central,
		Criterion:      cfg.Criterion,
		Theta:          cfg.Theta,
		Samples:        cfg.Samples,
		Tolerance:      cfg.Tolerance,
		Seed:           cfg.Seed,
		Noise:          noise,
		TopK:           topK,
		DrawsEvaluated: draws,
	}
	pfx := out[:topK]
	full := topK == len(in.Initial)
	switch {
	case scored && cfg.Criterion == CriterionNDCG:
		d.NDCG = score
	case full:
		v, err := quality.NDCGFull(pfx, in.Scores)
		if err != nil {
			return Diagnostics{}, err
		}
		d.NDCG = v
	default:
		// NDCG@topK with the pool-wide ideal as normalizer — the same
		// quantity the prefix-scoped selection criterion optimizes.
		dcg, err := quality.DCG(pfx, in.Scores, topK)
		if err != nil {
			return Diagnostics{}, err
		}
		idcg, err := quality.IDCG(in.Initial, in.Scores, topK)
		if err != nil {
			return Diagnostics{}, err
		}
		if idcg == 0 {
			d.NDCG = 1
		} else {
			d.NDCG = dcg / idcg
		}
	}
	switch {
	case scored && cfg.Criterion == CriterionKT:
		d.CentralKendallTau = int64(-score)
	case full:
		kt, err := rankdist.KendallTau(pfx, in.Initial)
		if err != nil {
			return Diagnostics{}, err
		}
		d.CentralKendallTau = kt
	default:
		// Kendall tau pairs within the prefix against the center: the
		// inversions of the prefix's center-position sequence.
		pos := in.Initial.Positions()
		seq := make(perm.Perm, topK)
		for i, item := range pfx {
			seq[i] = pos[item]
		}
		d.CentralKendallTau = seq.InversionCount()
	}
	v, err := fairness.EvaluateViolations(pfx, in.Groups, in.Bounds)
	if err != nil {
		return Diagnostics{}, err
	}
	d.InfeasibleIndex = v.TwoSidedAt(topK)
	d.PPfair = 100 * (1 - float64(d.InfeasibleIndex)/float64(topK))
	if in.Prob != nil {
		ev, err := fairness.EvaluateExpectedViolations(pfx, in.Prob, in.Bounds)
		if err != nil {
			return Diagnostics{}, err
		}
		pd := &ProbDiagnostics{ExpectedInfeasibleIndex: ev.TwoSidedAt(topK)}
		pd.ExpectedPPfair = 100 * (1 - float64(pd.ExpectedInfeasibleIndex)/float64(topK))
		pd.ExpectedDisparateExposure, err = fairness.ExpectedDisparateExposureAgainst(pfx, in.Prob, nil, fairness.BaselinePrefix)
		if err != nil {
			return Diagnostics{}, err
		}
		pd.ExpectedExposureGap, err = fairness.ExpectedExposureGapAgainst(pfx, in.Prob, nil, fairness.BaselinePrefix)
		if err != nil {
			return Diagnostics{}, err
		}
		d.Probabilistic = pd
	}
	return d, nil
}
