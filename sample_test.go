package fairrank

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// samplePool builds a deterministic two-group pool for the Sample tests.
func samplePool(n int) []Candidate {
	cands := make([]Candidate, n)
	for i := range cands {
		g := "a"
		if i%3 == 0 {
			g = "b"
		}
		cands[i] = Candidate{ID: fmt.Sprintf("s%02d", i), Score: float64(n - i), Group: g}
	}
	return cands
}

func sampleIDs(res *Result) []string {
	ids := make([]string, len(res.Ranking))
	for i, c := range res.Ranking {
		ids[i] = c.ID
	}
	return ids
}

func TestSampleReproducibleAndDecorrelated(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallows})
	if err != nil {
		t.Fatal(err)
	}
	cands := samplePool(12)
	seed := int64(7)
	run := func() [][]string {
		var seq [][]string
		err := r.Sample(context.Background(), Request{Candidates: cands, Seed: &seed}, 20, func(i int, res *Result) error {
			if i != len(seq) {
				t.Fatalf("draw index %d, want %d", i, len(seq))
			}
			seq = append(seq, sampleIDs(res))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal Sample sweeps observed different sequences")
	}
	distinct := map[string]bool{}
	for _, ids := range a {
		distinct[fmt.Sprint(ids)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("20 draws produced %d distinct rankings, want variation", len(distinct))
	}
}

func TestSampleDrawMatchesDoWithDerivedSeed(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmMallowsBest})
	if err != nil {
		t.Fatal(err)
	}
	cands := samplePool(10)
	seed := int64(42)
	var draws []*Result
	if err := r.Sample(context.Background(), Request{Candidates: cands, Seed: &seed}, 5, func(i int, res *Result) error {
		draws = append(draws, res)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range draws {
		derived := SampleSeed(seed, i)
		if got.Diagnostics.Seed != derived {
			t.Fatalf("draw %d reports seed %d, want SampleSeed = %d", i, got.Diagnostics.Seed, derived)
		}
		replay, err := r.Do(context.Background(), Request{Candidates: cands, Seed: &derived})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sampleIDs(got), sampleIDs(replay)) {
			t.Fatalf("draw %d not replayable through Do with its derived seed", i)
		}
	}
}

func TestSampleDeterministicAlgorithmDrawsIdentical(t *testing.T) {
	r, err := NewRanker(Config{Algorithm: AlgorithmDetConstSort})
	if err != nil {
		t.Fatal(err)
	}
	cands := samplePool(10)
	seed := int64(3)
	var first []string
	if err := r.Sample(context.Background(), Request{Candidates: cands, Seed: &seed}, 4, func(i int, res *Result) error {
		if i == 0 {
			first = sampleIDs(res)
			return nil
		}
		if !reflect.DeepEqual(first, sampleIDs(res)) {
			t.Fatalf("deterministic algorithm varied across Sample draws at draw %d", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleHonorsOverridesAndTopK(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := samplePool(12)
	theta, samples, topK, seed := 0.5, 3, 4, int64(1)
	err = r.Sample(context.Background(), Request{
		Candidates: cands, Theta: &theta, Samples: &samples, TopK: &topK, Seed: &seed,
	}, 3, func(i int, res *Result) error {
		d := res.Diagnostics
		if len(res.Ranking) != topK || d.TopK != topK {
			return fmt.Errorf("draw %d: ranking length %d (diag %d), want %d", i, len(res.Ranking), d.TopK, topK)
		}
		if d.Theta != theta || d.Samples != samples || d.DrawsEvaluated != samples {
			return fmt.Errorf("draw %d: resolved (θ=%v, m=%d, draws=%d), want (θ=%v, m=%d)", i, d.Theta, d.Samples, d.DrawsEvaluated, theta, samples)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleErrors(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := samplePool(8)
	noop := func(int, *Result) error { return nil }
	if err := r.Sample(context.Background(), Request{Candidates: cands}, 0, noop); err == nil {
		t.Error("draws = 0 accepted")
	}
	if err := r.Sample(context.Background(), Request{Candidates: cands}, 1, nil); err == nil {
		t.Error("nil observe accepted")
	}
	if err := r.Sample(context.Background(), Request{}, 1, noop); err == nil {
		t.Error("empty pool accepted")
	}
	bad := -1.0
	if err := r.Sample(context.Background(), Request{Candidates: cands, Theta: &bad}, 1, noop); err == nil {
		t.Error("negative theta accepted")
	}
	sentinel := errors.New("stop here")
	calls := 0
	err = r.Sample(context.Background(), Request{Candidates: cands}, 10, func(i int, res *Result) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("observe error = %v, want the sentinel back verbatim", err)
	}
	if calls != 1 {
		t.Errorf("observe called %d times after aborting, want 1", calls)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Sample(ctx, Request{Candidates: cands}, 5, noop); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Sample = %v, want context.Canceled", err)
	}
}
