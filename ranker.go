package fairrank

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/pl"
	"repro/internal/quality"
	"repro/internal/rankers"
)

// Ranker is a reusable fair-ranking engine: construct it once from a
// Config and call Do (or the legacy Rank) per request. It produces
// exactly the rankings the package-level Rank would (bit for bit, for
// equal seeds) while amortizing the work Rank re-derives on every call:
//
//   - Mallows insertion-probability tables, cached per (n, θ) — the
//     e^{−θ} and q^j evaluations behind every displacement draw;
//   - the DCG discount table behind the NDCG selection criterion, and
//     the per-request IDCG, computed once instead of once per sample;
//   - permutation scratch buffers, pooled per candidate-pool size so the
//     best-of-m sampling loop allocates nothing on the steady state;
//   - RNGs, pooled and re-seeded per request instead of re-allocated.
//
// A Ranker is safe for concurrent use by multiple goroutines; the caches
// are shared and lock-free on the hot path.
type Ranker struct {
	cfg Config
	// entry is the registry entry of cfg.Algorithm, captured at
	// construction: a Ranker's algorithm is fixed, so requests never
	// touch the global registry (its lock included) on the hot path.
	entry     algorithmEntry
	states    sync.Map   // sizeKey → *sizeState
	stateMu   sync.Mutex // serializes insert/evict; Load stays lock-free
	numStates atomic.Int32
	discMu    sync.Mutex // serializes discount insert/evict
	discounts sync.Map   // n → []float64
	numDiscs  atomic.Int32
	rngs      sync.Pool

	// Lightweight per-call counters behind Stats: serving layers read
	// them for observability without a second pass over the work done.
	statRequests       atomic.Int64
	statDraws          atomic.Int64
	statDrawsFull      atomic.Int64
	statDrawsTruncated atomic.Int64
	statTableHits      atomic.Int64
	statTableMisses    atomic.Int64
	// truncByNoise splits statDrawsTruncated by noise mechanism
	// (Noise → *atomic.Int64); every axis with a truncated draw path
	// gets its own counter on first use.
	truncByNoise sync.Map

	// forceFullDraws pins TopK requests to the full-length reference
	// draw path. Test-only: the equivalence suite uses it to check the
	// truncated fast path against the reference bit for bit.
	forceFullDraws bool
}

// RankerStats is a point-in-time snapshot of a Ranker's cumulative
// counters, for metrics endpoints and capacity planning. Counters only
// ever grow; two snapshots subtract into a rate.
type RankerStats struct {
	// Requests counts calls that reached ranking (Do, DoParallel, and
	// the legacy wrappers), successful or not.
	Requests int64
	// Draws counts noise permutations drawn and scored across all
	// requests (0 for deterministic algorithms).
	Draws int64
	// DrawsFull and DrawsTruncated split Draws by draw path: full-length
	// permutations versus lazy top-k prefixes from the truncated
	// samplers (Mallows bounded-window, generalized-Mallows bounded-
	// window, Plackett–Luce Gumbel top-k). DrawsFull + DrawsTruncated
	// == Draws.
	DrawsFull      int64
	DrawsTruncated int64
	// DrawsTruncatedByNoise splits DrawsTruncated by the noise mechanism
	// the draws came from ("mallows", "gmallows", "plackett-luce").
	// Nil until the first truncated draw; axes sum to DrawsTruncated.
	DrawsTruncatedByNoise map[string]int64
	// TableHits and TableMisses count lookups of the amortized
	// per-(n, θ) size-state cache: a miss paid the state build (each
	// noise axis's displacement tables are then built lazily within the
	// entry, once per axis).
	TableHits   int64
	TableMisses int64
	// PoolGets and PoolMisses count scratch-permutation checkouts across
	// the live per-(n, θ) pools and how many of those had to allocate.
	// Counts carried by evicted size-states drop out of the snapshot, so
	// these can regress across evictions — read them as a reuse-rate
	// signal, not an exact ledger.
	PoolGets   int64
	PoolMisses int64
}

// Stats snapshots the Ranker's cumulative counters. Safe for concurrent
// use; the counters are updated atomically on the serving path.
func (r *Ranker) Stats() RankerStats {
	s := RankerStats{
		Requests:       r.statRequests.Load(),
		Draws:          r.statDraws.Load(),
		DrawsFull:      r.statDrawsFull.Load(),
		DrawsTruncated: r.statDrawsTruncated.Load(),
		TableHits:      r.statTableHits.Load(),
		TableMisses:    r.statTableMisses.Load(),
	}
	r.states.Range(func(_, v any) bool {
		gets, misses := v.(*sizeState).scratch.Stats()
		s.PoolGets += int64(gets)
		s.PoolMisses += int64(misses)
		return true
	})
	r.truncByNoise.Range(func(k, v any) bool {
		if c := v.(*atomic.Int64).Load(); c != 0 {
			if s.DrawsTruncatedByNoise == nil {
				s.DrawsTruncatedByNoise = make(map[string]int64)
			}
			s.DrawsTruncatedByNoise[string(k.(Noise))] = c
		}
		return true
	})
	return s
}

// truncCounter returns the per-noise truncated-draw counter, creating
// it on first use.
func (r *Ranker) truncCounter(noise Noise) *atomic.Int64 {
	if v, ok := r.truncByNoise.Load(noise); ok {
		return v.(*atomic.Int64)
	}
	v, _ := r.truncByNoise.LoadOrStore(noise, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// maxSizeStates caps the per-(n, θ) cache: a size-state costs O(n)
// memory, so an adversarial mix of pool sizes or per-request
// dispersions must not pin unbounded state. At the cap an arbitrary
// entry is evicted rather than refusing the new key — otherwise a
// burst of junk (n, θ) keys would permanently lock legitimate traffic
// out of the amortization.
const maxSizeStates = 64

// sizeKey indexes the amortized per-size state. Theta is part of the key
// so a future per-request dispersion override can share the cache.
type sizeKey struct {
	n     int
	theta float64
}

// sizeState is the draw-path state reusable across requests of one pool
// size and dispersion: the shared permutation scratch pool plus, per
// noise axis, lazily built displacement tables and sampler scratch. The
// axes build on first use — PL-only traffic never pays for Mallows
// tables and vice versa — and each builds at most once per state. The
// DCG discount table lives in its own n-keyed cache (discountsFor):
// every mechanism and criterion shares it, and generic-noise traffic
// with varied θ must not evict warm tables it never samples from.
type sizeState struct {
	key     sizeKey
	scratch *perm.Pool
	// floats recycles *[]float64 scratch of capacity n+1 — Plackett–Luce
	// log-weight vectors and generalized-Mallows miss-threshold tables,
	// built once per request and shared read-only across its workers.
	floats sync.Pool
	// pls recycles *pl.Scratch (utilities, uniform blocks, top-k heap);
	// one per worker on the Plackett–Luce draw path.
	pls sync.Pool

	mallowsOnce sync.Once
	mallowsTab  *mallows.Tables
	mallowsErr  error

	gmOnce sync.Once
	gmTab  *mallows.GeneralizedTables
	gmErr  error
}

func newSizeState(key sizeKey) *sizeState {
	st := &sizeState{key: key, scratch: perm.NewPool(key.n)}
	st.floats.New = func() any {
		buf := make([]float64, key.n+1)
		return &buf
	}
	st.pls.New = func() any { return pl.NewScratch(key.n) }
	return st
}

// tables returns the fixed-θ Mallows displacement tables, building them
// on first use.
func (st *sizeState) tables() (*mallows.Tables, error) {
	st.mallowsOnce.Do(func() {
		st.mallowsTab, st.mallowsErr = mallows.NewTables(st.key.n, st.key.theta)
	})
	return st.mallowsTab, st.mallowsErr
}

// gtables returns the generalized-Mallows displacement tables for the
// built-in gmallows geometric-decay schedule θ·gmallowsDecay^j, building
// them on first use. The schedule expression matches the registry
// mechanism's exactly, so draws through the tables are bit-identical to
// the registered sampler's.
func (st *sizeState) gtables() (*mallows.GeneralizedTables, error) {
	st.gmOnce.Do(func() {
		thetas := make([]float64, st.key.n)
		for j := range thetas {
			thetas[j] = st.key.theta * math.Pow(gmallowsDecay, float64(j))
		}
		st.gmTab, st.gmErr = mallows.NewGeneralizedTables(thetas)
	})
	return st.gmTab, st.gmErr
}

func (st *sizeState) getFloats() *[]float64  { return st.floats.Get().(*[]float64) }
func (st *sizeState) putFloats(f *[]float64) { st.floats.Put(f) }
func (st *sizeState) getPL() *pl.Scratch     { return st.pls.Get().(*pl.Scratch) }
func (st *sizeState) putPL(s *pl.Scratch)    { st.pls.Put(s) }

// NewRanker validates cfg and returns a reusable Ranker. Field semantics
// and defaults are exactly Config's; cfg.Seed is only a fallback — each
// request carries its own seed (Request.Seed, or the seed argument of
// the legacy Rank).
func NewRanker(cfg Config) (*Ranker, error) {
	probe := cfg.withDefaults(1)
	entry, err := lookupEntry(probe.Algorithm)
	if err != nil {
		return nil, err
	}
	if entry.info.Sampling && entry.info.BestOf {
		switch probe.Criterion {
		case CriterionNDCG, CriterionKT:
		default:
			return nil, fmt.Errorf("fairrank: unknown criterion %q", probe.Criterion)
		}
	}
	if entry.factory != nil {
		// Let the factory validate the configuration now rather than on
		// the first request.
		if _, err := entry.factory(probe); err != nil {
			return nil, err
		}
	}
	if _, ok := LookupNoise(string(probe.Noise)); !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownNoise, probe.Noise)
	}
	switch probe.Central {
	case CentralWeaklyFair, CentralFairDCG, CentralScoreOrder:
	default:
		return nil, fmt.Errorf("fairrank: unknown central ranking %q", probe.Central)
	}
	if math.IsNaN(probe.Theta) || probe.Theta < 0 {
		return nil, fmt.Errorf("fairrank: dispersion θ = %v, want ≥ 0", probe.Theta)
	}
	if probe.Samples < 1 {
		return nil, fmt.Errorf("fairrank: samples = %d, want ≥ 1", probe.Samples)
	}
	if math.IsNaN(cfg.Tolerance) || cfg.Tolerance < 0 {
		return nil, fmt.Errorf("fairrank: tolerance = %v, want ≥ 0", cfg.Tolerance)
	}
	if math.IsNaN(cfg.Sigma) || cfg.Sigma < 0 {
		return nil, fmt.Errorf("fairrank: constraint noise σ = %v, want ≥ 0", cfg.Sigma)
	}
	r := &Ranker{cfg: cfg, entry: entry}
	r.rngs.New = func() any { return rand.New(rand.NewSource(0)) }
	return r, nil
}

// Config returns the configuration the Ranker was built from.
func (r *Ranker) Config() Config { return r.cfg }

// Warm pre-builds the per-size caches for the given candidate-pool
// sizes, moving the one-time table construction off the first request.
// It builds the tables of the noise axis the Ranker's configuration
// resolves to (the algorithm's pinned mechanism, else Config.Noise);
// the shared scratch pools warm for every axis either way.
func (r *Ranker) Warm(sizes ...int) error {
	for _, n := range sizes {
		cfg := r.cfg.withDefaults(n)
		st := r.state(n, cfg.Theta)
		noise := r.entry.info.Noise
		if noise == "" {
			noise = cfg.Noise
		}
		switch noise {
		case NoiseGMallows:
			if _, err := st.gtables(); err != nil {
				return err
			}
		case NoisePlackettLuce:
			// No tables: the log-weight vector is per-request (it depends
			// on the central ranking) and draws come from pooled scratch.
		default:
			if _, err := st.tables(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rank post-processes candidates into a fair ranking, best first. It is
// equivalent to Rank(candidates, cfg) with cfg.Seed = seed — identical
// output for identical input — but reuses the Ranker's caches. The input
// slice is not modified.
//
// Rank is the legacy entry point, kept as a thin wrapper over Do; it
// cannot express per-request overrides or cancellation. New code should
// call Do.
func (r *Ranker) Rank(candidates []Candidate, seed int64) ([]Candidate, error) {
	res, err := r.Do(context.Background(), Request{Candidates: candidates, Seed: &seed})
	if err != nil {
		return nil, err
	}
	return res.Ranking, nil
}

// RankParallel is Rank with the best-of-m Mallows draws fanned out over
// up to workers goroutines. The result is deterministic for equal seeds
// and does not depend on workers — draw i uses its own RNG seeded by a
// mix of (seed, i), and score ties break toward the lowest i — but the
// draws consume different random streams than Rank's single sequential
// stream, so for the same seed RankParallel and Rank return different
// (identically distributed) rankings. Algorithms without a sampling loop
// fall back to Rank.
//
// RankParallel is the legacy entry point, kept as a thin wrapper over
// DoParallel. New code should call DoParallel.
func (r *Ranker) RankParallel(candidates []Candidate, seed int64, workers int) ([]Candidate, error) {
	res, err := r.DoParallel(context.Background(), Request{Candidates: candidates, Seed: &seed}, workers)
	if err != nil {
		return nil, err
	}
	return res.Ranking, nil
}

// model wraps the instance's central ranking as a Mallows model without
// cloning it — the instance is request-local and the samplers only read
// the center.
func (r *Ranker) model(in rankers.Instance, cfg Config) *mallows.Model {
	return &mallows.Model{Center: in.Initial, Theta: cfg.Theta}
}

// criterionAt returns a maker of sample-selection score functions
// scoped to the first k ranks — the prefix a TopK request delivers.
// Scorers accept both full-length draws and lazy top-k prefixes (any
// permutation with ≥ k entries) and score only the first k, so the
// truncated and reference draw paths select identical winners. At
// k = n the arithmetic is exactly core's NDCGCriterion/KTCriterion with
// the discount table cached and the IDCG hoisted out of the per-sample
// loop.
//
// The two-level shape exists for the parallel fan-out: the maker builds
// the shared read-only state (discounts, IDCG, center positions) once
// per request, then each worker mints its own scorer holding private
// scratch, keeping the per-draw path allocation-free without locks.
func (r *Ranker) criterionAt(cfg Config, in rankers.Instance, k int) (func() func(perm.Perm) (float64, error), error) {
	switch cfg.Criterion {
	case CriterionNDCG:
		discounts := r.discountsFor(len(in.Initial))
		// The normalizer is the ideal DCG of the whole pool at cutoff k —
		// the best any delivered prefix could score — so NDCG stays in
		// [0, 1] and ranks prefixes the way NDCG@k ranks rankings.
		idcg, err := quality.IDCG(in.Initial, in.Scores, k)
		if err != nil {
			return nil, err
		}
		scorer := func(p perm.Perm) (float64, error) {
			var dcg float64
			for rk, item := range p[:k] {
				dcg += in.Scores[item] * discounts[rk]
			}
			if idcg == 0 {
				return 1, nil
			}
			return dcg / idcg, nil
		}
		// NDCG scoring reads only shared immutable state; every worker
		// can use one scorer.
		return func() func(perm.Perm) (float64, error) { return scorer }, nil
	case CriterionKT:
		pos := in.Initial.Positions()
		return func() func(perm.Perm) (float64, error) {
			seq := make(perm.Perm, k)
			work := make([]int, k)
			buf := make([]int, k)
			return func(p perm.Perm) (float64, error) {
				// Inversions of the center-position sequence of the
				// prefix = Kendall tau pairs the prefix orders against
				// the center; at k = n this is exactly the full Kendall
				// tau distance rankdist.KendallTau returns, computed
				// through reusable scratch instead of per-draw slices.
				for i, item := range p[:k] {
					seq[i] = pos[item]
				}
				return -float64(seq.InversionCountScratch(work, buf)), nil
			}
		}, nil
	default:
		return nil, fmt.Errorf("fairrank: unknown criterion %q", cfg.Criterion)
	}
}

// state returns the cached per-(n, θ) draw-path state, creating it on
// first use; each noise axis's tables build lazily inside the entry. At
// maxSizeStates distinct keys an arbitrary existing entry is evicted to
// make room, keeping memory bounded while letting every key (re-)enter
// the cache.
func (r *Ranker) state(n int, theta float64) *sizeState {
	key := sizeKey{n: n, theta: theta}
	if v, ok := r.states.Load(key); ok {
		r.statTableHits.Add(1)
		return v.(*sizeState)
	}
	r.statTableMisses.Add(1)
	st := newSizeState(key)
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	if v, ok := r.states.Load(key); ok {
		// Another goroutine cached the key while we built; use theirs so
		// concurrent requests share one scratch pool.
		return v.(*sizeState)
	}
	if r.numStates.Load() >= maxSizeStates {
		r.states.Range(func(k, _ any) bool {
			r.states.Delete(k)
			r.numStates.Add(-1)
			return false // one eviction is enough
		})
	}
	r.states.Store(key, st)
	r.numStates.Add(1)
	return st
}

// discountsFor returns the cached DCG discount table of pool size n
// (rank r, 0-based, → discount of rank r+1), building it on first use.
// Keyed by n alone — all mechanisms, dispersions, and criteria share
// it — and bounded like the size-state cache.
func (r *Ranker) discountsFor(n int) []float64 {
	if v, ok := r.discounts.Load(n); ok {
		return v.([]float64)
	}
	disc := make([]float64, n)
	for rk := range disc {
		disc[rk] = quality.LogDiscount(rk + 1)
	}
	r.discMu.Lock()
	defer r.discMu.Unlock()
	if v, ok := r.discounts.Load(n); ok {
		return v.([]float64)
	}
	if r.numDiscs.Load() >= maxSizeStates {
		r.discounts.Range(func(k, _ any) bool {
			r.discounts.Delete(k)
			r.numDiscs.Add(-1)
			return false // one eviction is enough
		})
	}
	r.discounts.Store(n, disc)
	r.numDiscs.Add(1)
	return disc
}

// getRNG hands out a pooled RNG re-seeded for the request; equal seeds
// yield the exact stream of rand.New(rand.NewSource(seed)).
func (r *Ranker) getRNG(seed int64) *rand.Rand {
	rng := r.rngs.Get().(*rand.Rand)
	rng.Seed(seed)
	return rng
}

// pickCandidates materializes the ranked candidate slice from a ranking
// over candidate indices.
func pickCandidates(candidates []Candidate, out perm.Perm) []Candidate {
	ranked := make([]Candidate, len(out))
	for rk, item := range out {
		ranked[rk] = candidates[item]
	}
	return ranked
}

// mixSeed derives the RNG seed of parallel draw i from the request seed
// (a splitmix64 step), decorrelating the per-draw streams.
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
