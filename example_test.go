package fairrank_test

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
)

// The candidates of the worked example: screening scores favour group
// "m", so the score order buries group "f".
func examplePool() []fairrank.Candidate {
	return []fairrank.Candidate{
		{ID: "ava", Score: 5.2, Group: "f"},
		{ID: "bea", Score: 5.1, Group: "f"},
		{ID: "cleo", Score: 4.8, Group: "f"},
		{ID: "dina", Score: 4.2, Group: "f"},
		{ID: "emil", Score: 9.9, Group: "m"},
		{ID: "finn", Score: 9.5, Group: "m"},
		{ID: "gus", Score: 9.1, Group: "m"},
		{ID: "hank", Score: 8.8, Group: "m"},
	}
}

func ExampleRank() {
	// Center the Mallows noise on the DCG-optimal fair ranking and keep
	// the sample closest to it: strong prefix fairness, tiny quality cost.
	ranked, err := fairrank.Rank(examplePool(), fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Central:   fairrank.CentralFairDCG,
		Criterion: fairrank.CriterionKT,
		Theta:     2,
		Samples:   15,
		Tolerance: 0.15,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("%d. %s (%s)\n", i+1, ranked[i].ID, ranked[i].Group)
	}
	// Output:
	// 1. emil (m)
	// 2. finn (m)
	// 3. ava (f)
	// 4. gus (m)
}

func ExampleRank_ilp() {
	// The paper's §IV-B program: the DCG-optimal ranking whose every
	// prefix respects the proportional bounds.
	ranked, err := fairrank.Rank(examplePool(), fairrank.Config{
		Algorithm: fairrank.AlgorithmILP,
		Tolerance: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	pp, err := fairrank.PPfair(ranked, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPfair = %.0f%%\n", pp)
	// Output:
	// PPfair = 100%
}

func ExamplePPfairTopK() {
	byScore, err := fairrank.Rank(examplePool(), fairrank.Config{
		Algorithm: fairrank.AlgorithmScoreSorted,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The score order's top 4 is all group "m".
	pp, err := fairrank.PPfairTopK(byScore, 4, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortlist PPfair = %.0f%%\n", pp)
	// Output:
	// shortlist PPfair = 0%
}

func ExampleNewRanker() {
	// A Ranker is built once and reused across requests, amortizing the
	// per-call setup. For equal seeds it returns exactly what Rank
	// returns.
	cfg := fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Central:   fairrank.CentralFairDCG,
		Criterion: fairrank.CriterionKT,
		Theta:     2,
		Tolerance: 0.15,
	}
	r, err := fairrank.NewRanker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := r.Rank(examplePool(), 42)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("%d. %s (%s)\n", i+1, ranked[i].ID, ranked[i].Group)
	}
	cfg.Seed = 42
	oneShot, err := fairrank.Rank(examplePool(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range ranked {
		same = same && ranked[i].ID == oneShot[i].ID
	}
	fmt.Println("matches one-shot Rank:", same)
	// Output:
	// 1. emil (m)
	// 2. finn (m)
	// 3. ava (f)
	// 4. gus (m)
	// matches one-shot Rank: true
}

func ExampleRanker_Do() {
	// The Request/Result API: per-request overrides ride on the Request
	// as pointer fields (zero is a real value), and the Result carries a
	// self-audit computed from state the engine already holds.
	r, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Central:   fairrank.CentralFairDCG,
	})
	if err != nil {
		log.Fatal(err)
	}
	theta, tol := 2.0, 0.15
	topK, seed := 4, int64(42)
	res, err := r.Do(context.Background(), fairrank.Request{
		Candidates: examplePool(),
		Theta:      &theta,
		Criterion:  fairrank.CriterionKT,
		Tolerance:  &tol,
		TopK:       &topK, // return only the shortlist
		Seed:       &seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range res.Ranking {
		fmt.Printf("%d. %s (%s)\n", i+1, c.ID, c.Group)
	}
	d := res.Diagnostics
	fmt.Printf("draws=%d ppfair@%d=%.0f%% infeasible=%d\n",
		d.DrawsEvaluated, d.TopK, d.PPfair, d.InfeasibleIndex)
	// Output:
	// 1. emil (m)
	// 2. finn (m)
	// 3. ava (f)
	// 4. gus (m)
	// draws=15 ppfair@4=100% infeasible=0
}

// The registry is the extension point: Register makes a custom Strategy
// constructible by name everywhere an algorithm name is accepted — the
// library (NewRanker/Rank), the serving catalog (GET /v1/algorithms),
// and the CLIs — with no dispatch table to edit.
func registerRoundRobin() {
	fairrank.MustRegister(fairrank.AlgorithmInfo{
		Name:          "round-robin",
		Description:   "cycle through the groups, taking each group's best remaining candidate",
		Deterministic: true,
	}, func(cfg fairrank.Config) (fairrank.Strategy, error) {
		return fairrank.StrategyFunc(func(in *fairrank.Instance, _ *rand.Rand) ([]int, error) {
			queues := make([][]int, in.NumGroups())
			for _, item := range in.Central() {
				queues[in.Group(item)] = append(queues[in.Group(item)], item)
			}
			out := make([]int, 0, in.N())
			for len(out) < in.N() {
				for g := range queues {
					if len(queues[g]) > 0 {
						out = append(out, queues[g][0])
						queues[g] = queues[g][1:]
					}
				}
			}
			return out, nil
		}), nil
	})
}

func ExampleRegister() {
	// Guarded so a repeated in-process run (go test -count=2) does not
	// re-register; the registry is process-global, first wins.
	if _, registered := fairrank.LookupAlgorithm("round-robin"); !registered {
		registerRoundRobin()
	}
	// The registration is immediately visible in the metadata catalog…
	info, _ := fairrank.LookupAlgorithm("round-robin")
	fmt.Println(info.Name, "—", info.Description)
	// …and rankable by name like any built-in.
	r, err := fairrank.NewRanker(fairrank.Config{Algorithm: "round-robin", Central: fairrank.CentralScoreOrder})
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Do(context.Background(), fairrank.Request{Candidates: examplePool()})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fmt.Printf("%d. %s (%s)\n", i+1, res.Ranking[i].ID, res.Ranking[i].Group)
	}
	// Output:
	// round-robin — cycle through the groups, taking each group's best remaining candidate
	// 1. ava (f)
	// 2. emil (m)
	// 3. bea (f)
	// 4. finn (m)
}

// The noise mechanism is a first-class axis of the sampling algorithms:
// one Config (or per-request) field swaps Mallows for any registered
// mechanism — here Plackett–Luce, the paper's §VI direction.
func ExampleConfig_noise() {
	r, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Noise:     fairrank.NoisePlackettLuce,
		Theta:     0.5,
		Samples:   10,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Do(context.Background(), fairrank.Request{Candidates: examplePool()})
	if err != nil {
		log.Fatal(err)
	}
	d := res.Diagnostics
	fmt.Printf("noise=%s draws=%d top=%s\n", d.Noise, d.DrawsEvaluated, res.Ranking[0].ID)
	// Output:
	// noise=plackett-luce draws=10 top=emil
}

func ExampleKendallTau() {
	pool := examplePool()
	byScore, err := fairrank.Rank(pool, fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted})
	if err != nil {
		log.Fatal(err)
	}
	fair, err := fairrank.Rank(pool, fairrank.Config{Algorithm: fairrank.AlgorithmILP, Tolerance: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	d, err := fairrank.KendallTau(fair, byScore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fairness cost: %d discordant pairs\n", d)
	// Output:
	// fairness cost: 2 discordant pairs
}
