package fairrank

// Integration tests spanning the facade and the internal packages:
// dataset → facade, aggregation → post-processing, and the optimality
// ordering between the exact algorithms.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/rankdist"
)

// germanPool converts the synthetic German Credit top-N into facade
// candidates with Housing as the hidden attribute.
func germanPool(t *testing.T, n int) []Candidate {
	t.Helper()
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(5)))
	top, err := ds.TopByAmount(n)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]Candidate, top.Len())
	for i, r := range top.Records {
		pool[i] = Candidate{
			ID:    fmt.Sprintf("a%03d", r.ID),
			Score: r.CreditAmount,
			Group: r.AgeSex.String(),
			Attrs: map[string]string{"housing": r.Housing.String()},
		}
	}
	return pool
}

func TestGermanPipelineThroughFacade(t *testing.T) {
	pool := germanPool(t, 40)
	for _, algo := range []Algorithm{
		AlgorithmScoreSorted, AlgorithmDetConstSort, AlgorithmIPF,
		AlgorithmILP, AlgorithmMallows, AlgorithmMallowsBest,
	} {
		ranked, err := Rank(pool, Config{Algorithm: algo, Tolerance: 0.1, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		ndcg, err := NDCG(ranked)
		if err != nil {
			t.Fatal(err)
		}
		if ndcg <= 0.9 || ndcg > 1+1e-9 {
			t.Fatalf("%s NDCG = %v", algo, ndcg)
		}
		ppKnown, err := PPfair(ranked, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		ppHidden, err := PPfairByAttr(ranked, "housing", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if ppKnown > 100+1e-9 || ppHidden > 100+1e-9 {
			t.Fatalf("%s PPfair out of range: %v / %v", algo, ppKnown, ppHidden)
		}
		// Exactly-fair algorithms must reach 100 on the known attribute.
		if (algo == AlgorithmIPF || algo == AlgorithmILP) && ppKnown != 100 {
			t.Fatalf("%s PPfair(known) = %v, want 100", algo, ppKnown)
		}
	}
}

func TestOptimalityOrderingAcrossAlgorithms(t *testing.T) {
	// On a binary-attribute pool: GrBinary is KT-optimal and IPF is
	// footrule-optimal among exactly fair rankings, and the ILP is
	// DCG-optimal; each must dominate the other two on its own metric.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(8)
		pool := make([]Candidate, n)
		for i := range pool {
			g := "a"
			if i%2 == 0 {
				g = "b"
			}
			pool[i] = Candidate{
				ID:    fmt.Sprintf("c%02d", i),
				Score: rng.Float64() * 100,
				Group: g,
			}
		}
		cfg := func(a Algorithm) Config { return Config{Algorithm: a, Tolerance: 0.1, Seed: 3} }
		grb, err := Rank(pool, cfg(AlgorithmGrBinary))
		if err != nil {
			t.Fatal(err)
		}
		ipf, err := Rank(pool, cfg(AlgorithmIPF))
		if err != nil {
			t.Fatal(err)
		}
		ilp, err := Rank(pool, cfg(AlgorithmILP))
		if err != nil {
			t.Fatal(err)
		}
		// GrBinary is KT-optimal and IPF footrule-optimal relative to the
		// facade's internal weakly fair ranking, which this test cannot
		// see; the observable ordering is on quality, where the ILP must
		// dominate both exactly-fair competitors.
		nGrb, err := NDCG(grb)
		if err != nil {
			t.Fatal(err)
		}
		nIpf, err := NDCG(ipf)
		if err != nil {
			t.Fatal(err)
		}
		nIlp, err := NDCG(ilp)
		if err != nil {
			t.Fatal(err)
		}
		if nIlp < nGrb-1e-9 || nIlp < nIpf-1e-9 {
			t.Fatalf("ILP NDCG %v below GrBinary %v or IPF %v", nIlp, nGrb, nIpf)
		}
	}
}

func TestAggregateThenPostProcessPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := perm.Random(10, rng)
	model, err := mallows.New(truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	votes := model.SampleN(25, rng)
	consensus, _, err := aggregate.KemenyExact(votes)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := core.CalibrateTheta(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	final, err := core.PostProcess(consensus, core.Config{
		Theta:     theta,
		Samples:   10,
		Criterion: core.KTCriterion{Reference: consensus},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := final.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := rankdist.KendallTau(final, consensus)
	if err != nil {
		t.Fatal(err)
	}
	// Best-of-10 under the KT criterion at E[d]=4 stays close.
	if d > 8 {
		t.Fatalf("post-processed ranking drifted KT %d from consensus", d)
	}
}

func TestFacadeMetricsAgreeWithInternal(t *testing.T) {
	pool := germanPool(t, 25)
	ranked, err := Rank(pool, Config{Algorithm: AlgorithmDetConstSort, Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute PPfair through the internal packages.
	groupIDs := map[string]int{}
	var names []string
	for _, c := range ranked {
		if _, ok := groupIDs[c.Group]; !ok {
			groupIDs[c.Group] = 0
			names = append(names, c.Group)
		}
	}
	// The facade sorts group names; mirror that.
	sort.Strings(names)
	for i, n := range names {
		groupIDs[n] = i
	}
	assign := make([]int, len(ranked))
	for i, c := range ranked {
		assign[i] = groupIDs[c.Group]
	}
	gr, err := fairness.NewGroups(assign, len(names))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := fairness.Proportional(gr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fairness.PPfair(perm.Identity(len(ranked)), gr, cons)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PPfair(ranked, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("facade PPfair %v, internal %v", got, want)
	}
}
