package fairrank_test

// One benchmark per table and figure of the paper's evaluation (§V),
// plus ablation and micro benchmarks for design choices, plus serving
// benchmarks for the reusable Ranker and the batch service. The figure
// benchmarks run the exact experiment drivers of internal/experiments
// with reduced sample counts so that `go test -bench=.` completes
// quickly; cmd/experiments regenerates the full-fidelity numbers (the
// default configs there mirror the paper).

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	fairrank "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fairdp"
	"repro/internal/fairness"
	"repro/internal/ilp"
	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/pl"
	"repro/internal/quality"
	"repro/internal/rankdist"
	"repro/internal/rankers"
	"repro/internal/service"
)

// --- Figure and table benchmarks -----------------------------------------

func benchFig1Config() experiments.Fig1Config {
	cfg := experiments.DefaultFig1Config()
	cfg.Samples = 200
	cfg.BootstrapN = 200
	return cfg
}

func BenchmarkFig1InfeasibleIndex(b *testing.B) {
	cfg := benchFig1Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScoreGapConfig() experiments.ScoreGapConfig {
	cfg := experiments.DefaultScoreGapConfig()
	cfg.Reps = 10
	cfg.Samples = 10
	cfg.BootstrapN = 200
	return cfg
}

func BenchmarkFig2CentralII(b *testing.B) {
	cfg := benchScoreGapConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SampleII(b *testing.B) {
	cfg := benchScoreGapConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SampleNDCG(b *testing.B) {
	cfg := benchScoreGapConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(int64(i))))
		tab := experiments.Table1(ds)
		if len(tab.Rows) != 5 {
			b.Fatal("table shape")
		}
	}
}

func benchGermanConfig() experiments.GermanConfig {
	cfg := experiments.DefaultGermanConfig()
	cfg.Sizes = []int{10, 50, 100}
	cfg.Reps = 5
	cfg.BootstrapN = 200
	return cfg
}

// The German experiment produces Figs. 5, 6, and 7 in a single pass;
// each benchmark exercises the full pass and checks its own figure.
func benchGerman(b *testing.B, pick func(*experiments.GermanResult) *experiments.Figure) {
	cfg := benchGermanConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.German(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if fig := pick(res); len(fig.Panels) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig5PPfairKnown(b *testing.B) {
	benchGerman(b, func(r *experiments.GermanResult) *experiments.Figure { return r.Fig5 })
}

func BenchmarkFig6PPfairUnknown(b *testing.B) {
	benchGerman(b, func(r *experiments.GermanResult) *experiments.Figure { return r.Fig6 })
}

func BenchmarkFig7NDCG(b *testing.B) {
	benchGerman(b, func(r *experiments.GermanResult) *experiments.Figure { return r.Fig7 })
}

// BenchmarkFigE1GermanBinary covers the binary-attribute extension
// experiment (GrBinaryIPF vs the multi-group algorithms on Sex).
func BenchmarkFigE1GermanBinary(b *testing.B) {
	cfg := benchGermanConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.GermanBinary(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Panels) != 2 {
			b.Fatal("figE1 shape")
		}
	}
}

// --- Ablation benchmarks --------------------------------------------------

// germanInstance builds the size-100 German Credit ranking instance used
// by several ablations.
func germanInstance(b *testing.B) rankers.Instance {
	b.Helper()
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(1)))
	sub, err := ds.TopByAmount(100)
	if err != nil {
		b.Fatal(err)
	}
	scores := quality.Scores(sub.Scores())
	gr, err := fairness.NewGroups(sub.AgeSexAssign(), int(dataset.NumAgeSex))
	if err != nil {
		b.Fatal(err)
	}
	cons, err := fairness.Proportional(gr, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	central, err := fairness.WeaklyFairRanking(scores, gr, cons, 10)
	if err != nil {
		b.Fatal(err)
	}
	return rankers.Instance{Initial: central, Scores: scores, Groups: gr, Bounds: cons.Table(100)}
}

// BenchmarkAblationSampleCount measures the best-of-m trade-off of
// Algorithm 1: wall time grows linearly in m while the NDCG of the kept
// sample (reported as the custom metric "ndcg") saturates.
func BenchmarkAblationSampleCount(b *testing.B) {
	in := germanInstance(b)
	for _, m := range []int{1, 5, 15, 50} {
		b.Run(benchName("m", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			var total float64
			for i := 0; i < b.N; i++ {
				out, err := rankers.Mallows{Theta: 1, Samples: m, Criterion: rankers.SelectNDCG}.Rank(in, rng)
				if err != nil {
					b.Fatal(err)
				}
				v, err := quality.NDCG(out, in.Scores, len(out))
				if err != nil {
					b.Fatal(err)
				}
				total += v
			}
			b.ReportMetric(total/float64(b.N), "ndcg")
		})
	}
}

// BenchmarkAblationCriterion compares the three sample-selection
// criteria of Algorithm 1 at fixed m.
func BenchmarkAblationCriterion(b *testing.B) {
	in := germanInstance(b)
	criteria := []struct {
		name string
		crit core.Criterion
	}{
		{"ndcg", core.NDCGCriterion{Scores: in.Scores}},
		{"kt", core.KTCriterion{Reference: in.Initial}},
		{"infeasible-index", core.FairnessCriterion{Groups: in.Groups, Constraints: mustConstraints(b, in.Groups)}},
	}
	for _, c := range criteria {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < b.N; i++ {
				_, err := core.PostProcess(in.Initial, core.Config{Theta: 1, Samples: 15, Criterion: c.crit}, rng)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustConstraints(b *testing.B, gr *fairness.Groups) *fairness.Constraints {
	b.Helper()
	c, err := fairness.Proportional(gr, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAblationRIMvsNaive compares the closed-form truncated-
// geometric displacement draw of the RIM sampler against a linear-scan
// inverse-CDF baseline.
func BenchmarkAblationRIMvsNaive(b *testing.B) {
	const n = 200
	center := perm.Identity(n)
	model, err := mallows.New(center, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rim-closed-form", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < b.N; i++ {
			model.Sample(rng)
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < b.N; i++ {
			naiveMallowsSample(center, 1, rng)
		}
	})
}

// naiveMallowsSample is the O(n²)-draws baseline: the same repeated
// insertion process but with each displacement sampled by scanning the
// cumulative geometric weights.
func naiveMallowsSample(center perm.Perm, theta float64, rng *rand.Rand) perm.Perm {
	n := len(center)
	out := make(perm.Perm, 0, n)
	q := math.Exp(-theta)
	for j := 1; j <= n; j++ {
		// weights q^v for v = 0…j−1
		var z float64
		w := 1.0
		for v := 0; v < j; v++ {
			z += w
			w *= q
		}
		u := rng.Float64() * z
		v := 0
		w = 1.0
		for u > w && v < j-1 {
			u -= w
			w *= q
			v++
		}
		idx := j - 1 - v
		out = append(out, 0)
		copy(out[idx+1:], out[idx:])
		out[idx] = center[j-1]
	}
	return out
}

// BenchmarkAblationNoiseSources compares the pluggable randomization
// mechanisms (§VI future work) around the same central ranking: wall
// time per draw plus the mean Kendall tau movement they cause, reported
// as the custom metric "kt".
func BenchmarkAblationNoiseSources(b *testing.B) {
	in := germanInstance(b)
	thetas := make([]float64, len(in.Initial))
	for i := range thetas {
		thetas[i] = 2 * math.Pow(0.97, float64(i))
	}
	sources := []core.Noise{
		core.MallowsNoise{Theta: 1},
		core.GeneralizedMallowsNoise{Thetas: thetas},
		core.PlackettLuceNoise{Strength: 0.1},
		core.AdjacentSwapNoise{Swaps: 60},
	}
	for _, src := range sources {
		b.Run(src.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			draw, err := src.Sampler(in.Initial)
			if err != nil {
				b.Fatal(err)
			}
			var totalKT float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := draw(rng)
				d, err := rankdist.KendallTau(p, in.Initial)
				if err != nil {
					b.Fatal(err)
				}
				totalKT += float64(d)
			}
			b.ReportMetric(totalKT/float64(b.N), "kt")
		})
	}
}

// BenchmarkAblationDPvsILP compares the two exact solvers of the §IV-B
// program on identical instances (the simplex branch-and-bound is only
// viable at small sizes; the DP is the production path).
func BenchmarkAblationDPvsILP(b *testing.B) {
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(5)))
	sub, err := ds.TopByAmount(10)
	if err != nil {
		b.Fatal(err)
	}
	scores := quality.Scores(sub.Scores())
	gr, err := fairness.NewGroups(sub.AgeSexAssign(), int(dataset.NumAgeSex))
	if err != nil {
		b.Fatal(err)
	}
	cons, err := fairness.Proportional(gr, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	central, err := fairness.WeaklyFairRanking(scores, gr, cons, 10)
	if err != nil {
		b.Fatal(err)
	}
	in := rankers.Instance{Initial: central, Scores: scores, Groups: gr, Bounds: cons.Table(10)}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (rankers.ILPRanker{Backend: rankers.DP}).Rank(in, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplex-bb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (rankers.ILPRanker{Backend: rankers.SimplexBB}).Rank(in, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro benchmarks -----------------------------------------------------

// BenchmarkMallowsSample compares the two exact samplers. The insertion
// sampler's cost tracks the expected displacement (≈ E[d_KT]): linear
// in n for fixed θ > 0, quadratic as θ → 0, where the Fenwick-tree
// sampler's O(n log n) takes over.
func BenchmarkMallowsSample(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, theta := range []float64{0, 1} {
			model, err := mallows.New(perm.Identity(n), theta)
			if err != nil {
				b.Fatal(err)
			}
			suffix := benchName("n", n) + "/" + benchName("theta10x", int(theta*10))
			b.Run("insert/"+suffix, func(b *testing.B) {
				rng := rand.New(rand.NewSource(6))
				for i := 0; i < b.N; i++ {
					model.Sample(rng)
				}
			})
			b.Run("fenwick/"+suffix, func(b *testing.B) {
				rng := rand.New(rand.NewSource(6))
				for i := 0; i < b.N; i++ {
					model.SampleFast(rng)
				}
			})
		}
	}
}

// BenchmarkTopKTruncated is the case for the lazy top-k draw path at
// serving scale (n = 1e5, k = 10): "full/insert" and "full/fenwick" are
// the two full-length reference samplers, "truncated" the bounded-window
// sampler that materializes only the delivered prefix. All three reuse
// tables and scratch, so the numbers isolate the draw itself; the CI
// bench-smoke step fails the build if the truncated line disappears or
// stops beating the full path. The truncated draw must also report
// 0 allocs/op — it is the engine's steady-state TopK path.
func BenchmarkTopKTruncated(b *testing.B) {
	const n, k = 100000, 10
	model, err := mallows.New(perm.Identity(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	tables := model.Tables()
	b.Run("full/insert", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = model.SampleInto(tables, out, rng)
		}
	})
	b.Run("full/fenwick", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		fs := model.NewFastSampler(tables)
		out := make(perm.Perm, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = fs.SampleInto(out, rng)
		}
	})
	b.Run("truncated", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, k)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = model.SampleTopKInto(tables, k, out, rng)
		}
	})
}

// BenchmarkPLTopKTruncated is the Plackett–Luce counterpart of
// BenchmarkTopKTruncated (n = 1e5, k = 10): "full" is the pooled-scratch
// Gumbel sort over every item, "truncated" the bounded k-slot heap that
// materializes only the delivered prefix. Both share one log-weight
// vector and one Scratch, so the numbers isolate the draw; the CI
// bench-smoke step fails the build if the truncated line disappears or
// stops beating the full path, and both must report 0 allocs/op.
func BenchmarkPLTopKTruncated(b *testing.B) {
	const n, k = 100000, 10
	logw := make([]float64, n)
	for i := range logw {
		logw[i] = -1e-4 * float64(i)
	}
	s := pl.NewScratch(n)
	b.Run("full", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = pl.SampleLogWeightsInto(logw, out, s, rng)
		}
	})
	b.Run("truncated", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, k)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = pl.SampleTopKInto(logw, k, out, s, rng)
		}
	})
}

// BenchmarkGMallowsTopKTruncated covers the third noise axis at the same
// scale (n = 1e5, k = 10) with the engine's geometric-decay dispersion
// schedule θ_j = θ·0.97^j: "full" draws through GeneralizedTables over
// every insertion step, "truncated" keeps the bounded window with
// precomputed per-step miss thresholds. Gated by CI like the other two
// axes; 0 allocs/op on both paths.
func BenchmarkGMallowsTopKTruncated(b *testing.B) {
	const n, k = 100000, 10
	thetas := make([]float64, n)
	for j := range thetas {
		thetas[j] = 1 * math.Pow(0.97, float64(j))
	}
	center := perm.Identity(n)
	tables, err := mallows.NewGeneralizedTables(thetas)
	if err != nil {
		b.Fatal(err)
	}
	thresh := tables.MissThresholds(k, nil)
	b.Run("full", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = tables.SampleInto(center, out, rng)
		}
	})
	b.Run("truncated", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		out := make(perm.Perm, 0, k)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = tables.SampleTopKInto(center, k, thresh, out, rng)
		}
	})
}

func BenchmarkKendallTau(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			p, q := perm.Random(n, rng), perm.Random(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rankdist.KendallTau(p, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFairDPSize100(b *testing.B) {
	in := germanInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fairdp.Solve(in.Scores, in.Groups, in.Bounds, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarianViaIPF(b *testing.B) {
	in := germanInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (rankers.ApproxMultiValuedIPF{}).Rank(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	// A moderately sized dense LP: 60 variables, 40 constraints.
	rng := rand.New(rand.NewSource(8))
	const nv, nc = 60, 40
	obj := make([]float64, nv)
	for j := range obj {
		obj[j] = rng.Float64()
	}
	cons := make([]ilp.Constraint, nc)
	for i := range cons {
		coeffs := make([]float64, nv)
		for j := range coeffs {
			coeffs[j] = rng.Float64()
		}
		cons[i] = ilp.Constraint{Coeffs: coeffs, Rel: ilp.LE, RHS: 5 + rng.Float64()*10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := ilp.SolveLP(obj, cons)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != ilp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// --- Serving benchmarks ---------------------------------------------------

// servingPool builds an n-candidate two-group pool with group-biased
// scores, the serving layer's workhorse shape.
func servingPool(n int) []fairrank.Candidate {
	rng := rand.New(rand.NewSource(12))
	groups := []string{"a", "b"}
	pool := make([]fairrank.Candidate, n)
	for i := range pool {
		g := groups[i%2]
		bias := 0.0
		if g == "a" {
			bias = 2
		}
		pool[i] = fairrank.Candidate{
			ID:    "c" + strconv.Itoa(i),
			Score: bias + rng.Float64(),
			Group: g,
		}
	}
	return pool
}

// BenchmarkRankerReuse is the case for the reusable engine at n=1000:
// "per-call" pays the package-level Rank's per-request setup (fresh RNG,
// displacement math re-derived per draw, per-sample criterion setup,
// fresh buffers); "reused" serves the same requests from one Ranker's
// warm caches; "reused-parallel" adds the fan-out of the best-of-m draws
// across cores. All three produce identically distributed rankings, and
// "reused" is bit-identical to "per-call" seed for seed.
func BenchmarkRankerReuse(b *testing.B) {
	pool := servingPool(1000)
	cfg := fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Theta: 1, Samples: 15}
	b.Run("per-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i)
			if _, err := fairrank.Rank(pool, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		r, err := fairrank.NewRanker(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Rank(pool, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-parallel", func(b *testing.B) {
		r, err := fairrank.NewRanker(cfg)
		if err != nil {
			b.Fatal(err)
		}
		workers := runtime.GOMAXPROCS(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.RankParallel(pool, int64(i), workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlackettLuceBest covers the hot path of the registry's
// pl-best algorithm — the engine-managed best-of-m loop drawing from the
// Plackett–Luce mechanism (Gumbel-max sampling, O(n log n) per draw) —
// at the serving workhorse shape of n = 1000, m = 15, sequentially and
// with the draws fanned out across cores.
func BenchmarkPlackettLuceBest(b *testing.B) {
	pool := servingPool(1000)
	r, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.AlgorithmPlackettLuce,
		Theta:     0.01,
		Samples:   15,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed := int64(i)
			if _, err := r.Do(ctx, fairrank.Request{Candidates: pool, Seed: &seed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			seed := int64(i)
			if _, err := r.DoParallel(ctx, fairrank.Request{Candidates: pool, Seed: &seed}, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNoiseAxis compares the registered mechanisms through the one
// engine loop that serves them all (mallows-best with the per-request
// noise override), so regressions in any mechanism's serving path
// surface here.
func BenchmarkNoiseAxis(b *testing.B) {
	pool := servingPool(1000)
	r, err := fairrank.NewRanker(fairrank.Config{Theta: 1, Samples: 15})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range fairrank.Noises() {
		b.Run(n.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				if _, err := r.Do(ctx, fairrank.Request{
					Candidates: pool,
					Noise:      fairrank.Noise(n.Name),
					Seed:       &seed,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceBatch measures batch throughput of the serving layer:
// independent 200-candidate requests ranked concurrently through the
// bounded worker pool.
func BenchmarkServiceBatch(b *testing.B) {
	for _, size := range []int{1, 16, 64} {
		b.Run(benchName("batch", size), func(b *testing.B) {
			svc := service.New(service.Config{})
			pool := make([]service.Candidate, 200)
			for i := range pool {
				pool[i] = service.Candidate{ID: "c" + strconv.Itoa(i), Score: float64(200 - i%97), Group: []string{"a", "b"}[i%2]}
			}
			batch := &service.BatchRequest{}
			for i := 0; i < size; i++ {
				batch.Requests = append(batch.Requests, service.RankRequest{Candidates: pool, Seed: int64(i)})
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := svc.RankBatch(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				for j, item := range resp.Items {
					if item.Error != "" {
						b.Fatalf("item %d: %s", j, item.Error)
					}
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
