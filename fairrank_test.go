package fairrank

import (
	"math"
	"strconv"
	"testing"
)

// pool builds n candidates in two groups where group "a" holds the top
// scores — the biased-scores scenario of the paper's introduction.
func pool(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		g := "a"
		if i >= n/2 {
			g = "b"
		}
		out[i] = Candidate{
			ID:    "c" + strconv.Itoa(i),
			Score: float64(n - i),
			Group: g,
			Attrs: map[string]string{"region": []string{"north", "south", "east"}[i%3]},
		}
	}
	return out
}

func TestRankAllAlgorithms(t *testing.T) {
	cands := pool(12)
	algos := []Algorithm{
		AlgorithmMallows, AlgorithmMallowsBest, AlgorithmDetConstSort,
		AlgorithmIPF, AlgorithmGrBinary, AlgorithmILP, AlgorithmScoreSorted,
	}
	for _, a := range algos {
		ranked, err := Rank(cands, Config{Algorithm: a, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(ranked) != len(cands) {
			t.Fatalf("%s: returned %d candidates", a, len(ranked))
		}
		seen := map[string]bool{}
		for _, c := range ranked {
			if seen[c.ID] {
				t.Fatalf("%s: duplicate %q in output", a, c.ID)
			}
			seen[c.ID] = true
		}
	}
}

func TestRankDefaultsAndDeterminism(t *testing.T) {
	cands := pool(10)
	a, err := Rank(cands, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(cands, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same seed, different rankings")
		}
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	cands := pool(8)
	want := make([]Candidate, len(cands))
	copy(want, cands)
	if _, err := Rank(cands, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if cands[i].ID != want[i].ID || cands[i].Score != want[i].Score {
			t.Fatal("Rank mutated its input")
		}
	}
}

func TestRankValidation(t *testing.T) {
	if _, err := Rank(nil, Config{}); err == nil {
		t.Error("accepted empty pool")
	}
	if _, err := Rank([]Candidate{{ID: "", Score: 1, Group: "a"}}, Config{}); err == nil {
		t.Error("accepted empty ID")
	}
	if _, err := Rank([]Candidate{
		{ID: "x", Score: 1, Group: "a"},
		{ID: "x", Score: 2, Group: "b"},
	}, Config{}); err == nil {
		t.Error("accepted duplicate IDs")
	}
	if _, err := Rank([]Candidate{{ID: "x", Score: 1, Group: ""}}, Config{}); err == nil {
		t.Error("accepted empty group")
	}
	if _, err := Rank(pool(6), Config{Algorithm: "nope"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if _, err := Rank(pool(6), Config{Tolerance: -1}); err == nil {
		t.Error("accepted negative tolerance")
	}
	// GrBinary requires two groups.
	three := pool(6)
	three[0].Group = "c"
	if _, err := Rank(three, Config{Algorithm: AlgorithmGrBinary}); err == nil {
		t.Error("grbinary accepted three groups")
	}
}

func TestCentralChoices(t *testing.T) {
	cands := pool(12)
	for _, central := range []Central{CentralWeaklyFair, CentralFairDCG, CentralScoreOrder} {
		ranked, err := Rank(cands, Config{
			Algorithm: AlgorithmMallows, Theta: 30, Central: central, Seed: 4, Tolerance: 0.05,
		})
		if err != nil {
			t.Fatalf("%s: %v", central, err)
		}
		if len(ranked) != 12 {
			t.Fatalf("%s: %d candidates", central, len(ranked))
		}
		// θ=30 reproduces the central, so the central's properties show
		// directly: the fair-DCG central passes every prefix bound, the
		// score central is the ideal order.
		switch central {
		case CentralFairDCG:
			pp, err := PPfair(ranked, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if pp != 100 {
				t.Fatalf("fair central PPfair = %v", pp)
			}
		case CentralScoreOrder:
			v, err := NDCG(ranked)
			if err != nil {
				t.Fatal(err)
			}
			if v != 1 {
				t.Fatalf("score central NDCG = %v", v)
			}
		}
	}
	if _, err := Rank(cands, Config{Central: "bogus"}); err == nil {
		t.Error("accepted unknown central")
	}
}

func TestScoreSortedIsDescending(t *testing.T) {
	ranked, err := Rank(pool(9), Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("score order violated")
		}
	}
	v, err := NDCG(ranked)
	if err != nil || v != 1 {
		t.Fatalf("NDCG of score order = %v, %v", v, err)
	}
}

func TestILPImprovesFairnessOverScoreOrder(t *testing.T) {
	cands := pool(12) // group a holds all top scores
	byScore, err := Rank(cands, Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Rank(cands, Config{Algorithm: AlgorithmILP, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ppScore, err := PPfair(byScore, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ppFair, err := PPfair(fair, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ppFair <= ppScore {
		t.Fatalf("ILP PPfair %v not above score order %v", ppFair, ppScore)
	}
	if ppFair != 100 {
		t.Fatalf("ILP PPfair = %v, want 100", ppFair)
	}
}

func TestNDCGKendallMetrics(t *testing.T) {
	cands := pool(6)
	byScore, _ := Rank(cands, Config{Algorithm: AlgorithmScoreSorted})
	rev := make([]Candidate, len(byScore))
	for i := range byScore {
		rev[i] = byScore[len(byScore)-1-i]
	}
	kt, err := KendallTau(byScore, rev)
	if err != nil {
		t.Fatal(err)
	}
	if kt != 15 {
		t.Fatalf("KT(order, reverse) = %d, want 15", kt)
	}
	self, err := KendallTau(byScore, byScore)
	if err != nil || self != 0 {
		t.Fatalf("KT self = %d, %v", self, err)
	}
	ndcgRev, err := NDCG(rev)
	if err != nil {
		t.Fatal(err)
	}
	if ndcgRev >= 1 {
		t.Fatalf("NDCG of reverse = %v", ndcgRev)
	}
	// Error paths.
	if _, err := KendallTau(byScore, byScore[:3]); err == nil {
		t.Error("accepted size mismatch")
	}
	other := pool(6)
	other[0].ID = "zzz"
	if _, err := KendallTau(byScore, other); err == nil {
		t.Error("accepted different candidate sets")
	}
}

func TestKendallTauDuplicateIDs(t *testing.T) {
	a := []Candidate{{ID: "x", Group: "g"}, {ID: "y", Group: "g"}}
	dup := []Candidate{{ID: "x", Group: "g"}, {ID: "x", Group: "g"}}
	if _, err := KendallTau(a, dup); err == nil {
		t.Error("accepted duplicate IDs in the second ranking")
	}
	// Duplicates in the first ranking collide on the second's positions.
	if _, err := KendallTau(dup, a); err == nil {
		t.Error("accepted duplicate IDs in the first ranking")
	}
	// Same sizes, disjoint ID sets.
	b := []Candidate{{ID: "p", Group: "g"}, {ID: "q", Group: "g"}}
	if _, err := KendallTau(a, b); err == nil {
		t.Error("accepted disjoint candidate sets")
	}
}

func TestRankRejectsNaNScore(t *testing.T) {
	cands := pool(6)
	cands[2].Score = math.NaN()
	if _, err := Rank(cands, Config{}); err == nil {
		t.Error("accepted a NaN score")
	}
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rank(cands, 1); err == nil {
		t.Error("Ranker accepted a NaN score")
	}
}

func TestPPfairByAttr(t *testing.T) {
	cands := pool(12)
	ranked, err := Rank(cands, Config{Algorithm: AlgorithmMallowsBest, Theta: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := PPfairByAttr(ranked, "region", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || v > 100 {
		t.Fatalf("PPfairByAttr = %v", v)
	}
	if _, err := PPfairByAttr(ranked, "missing", 0.1); err == nil {
		t.Error("accepted missing attribute")
	}
}

func TestPPfairTopK(t *testing.T) {
	ranked, err := Rank(pool(12), Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	full, err := PPfair(ranked, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	all, err := PPfairTopK(ranked, len(ranked), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if all != full {
		t.Fatalf("PPfairTopK(n) = %v, PPfair = %v", all, full)
	}
	if _, err := PPfairTopK(ranked, 0, 0.05); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := PPfairTopK(ranked, 13, 0.05); err == nil {
		t.Error("accepted k>n")
	}
}

func TestInfeasibleIndexConsistentWithPPfair(t *testing.T) {
	ranked, err := Rank(pool(10), Config{Algorithm: AlgorithmScoreSorted})
	if err != nil {
		t.Fatal(err)
	}
	ii, err := InfeasibleIndex(ranked, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PPfair(ranked, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (1 - float64(ii)/10)
	if math.Abs(pp-want) > 1e-9 {
		t.Fatalf("PPfair %v inconsistent with II %d", pp, ii)
	}
}

func TestHighThetaPreservesQuality(t *testing.T) {
	cands := pool(20)
	ranked, err := Rank(cands, Config{Algorithm: AlgorithmMallows, Theta: 25, Seed: 2, Tolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NDCG(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.98 {
		t.Fatalf("θ=25 NDCG = %v, want ≈ 1", v)
	}
}
