package fairrank

// Exact error-string tables for every rejectable field of Config and
// Request. These messages are API: the serving layer forwards them to
// clients verbatim (wrapped in its ErrInvalid prefix), so a wording
// change is a wire change and must show up as a test diff.

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestNewRankerRejectsExact(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
		is   error // optional sentinel the error must wrap
	}{
		{"unknown algorithm", Config{Algorithm: "quicksort"}, `fairrank: unknown algorithm "quicksort"`, ErrUnknownAlgorithm},
		{"unknown noise", Config{Noise: "fog"}, `fairrank: unknown noise "fog"`, ErrUnknownNoise},
		{"unknown central", Config{Central: "median"}, `fairrank: unknown central ranking "median"`, nil},
		{"unknown criterion", Config{Criterion: "vibes"}, `fairrank: unknown criterion "vibes"`, nil},
		{"negative theta", Config{Theta: -1}, "fairrank: dispersion θ = -1, want ≥ 0", nil},
		{"NaN theta", Config{Theta: math.NaN()}, "fairrank: dispersion θ = NaN, want ≥ 0", nil},
		{"negative samples", Config{Samples: -3}, "fairrank: samples = -3, want ≥ 1", nil},
		{"negative tolerance", Config{Tolerance: -0.2}, "fairrank: tolerance = -0.2, want ≥ 0", nil},
		{"NaN tolerance", Config{Tolerance: math.NaN()}, "fairrank: tolerance = NaN, want ≥ 0", nil},
		{"negative sigma", Config{Sigma: -0.5}, "fairrank: constraint noise σ = -0.5, want ≥ 0", nil},
		{"NaN sigma", Config{Sigma: math.NaN()}, "fairrank: constraint noise σ = NaN, want ≥ 0", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRanker(tc.cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", tc.cfg)
			}
			if got := err.Error(); got != tc.want {
				t.Errorf("error = %q, want exactly %q", got, tc.want)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Errorf("error %v does not wrap the %v sentinel", err, tc.is)
			}
		})
	}
}

func TestRequestRejectsExact(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ok := pool(6)
	cases := []struct {
		name string
		req  Request
		want string
		is   error
	}{
		{"negative theta", Request{Candidates: ok, Theta: fptr(-1)}, "fairrank: request dispersion θ = -1, want ≥ 0", nil},
		{"NaN theta", Request{Candidates: ok, Theta: fptr(math.NaN())}, "fairrank: request dispersion θ = NaN, want ≥ 0", nil},
		{"zero samples", Request{Candidates: ok, Samples: iptr(0)}, "fairrank: request samples = 0, want ≥ 1", nil},
		{"negative samples", Request{Candidates: ok, Samples: iptr(-2)}, "fairrank: request samples = -2, want ≥ 1", nil},
		{"unknown criterion", Request{Candidates: ok, Criterion: "vibes"}, `fairrank: unknown criterion "vibes"`, nil},
		{"unknown noise", Request{Candidates: ok, Noise: "fog"}, `fairrank: unknown noise "fog"`, ErrUnknownNoise},
		{"negative tolerance", Request{Candidates: ok, Tolerance: fptr(-0.5)}, "fairrank: request tolerance -0.5, want ≥ 0", nil},
		{"NaN tolerance", Request{Candidates: ok, Tolerance: fptr(math.NaN())}, "fairrank: request tolerance NaN, want ≥ 0", nil},
		{"zero top-k", Request{Candidates: ok, TopK: iptr(0)}, "fairrank: request top-k = 0, want ≥ 1", nil},
		{"negative top-k", Request{Candidates: ok, TopK: iptr(-3)}, "fairrank: request top-k = -3, want ≥ 1", nil},
		{"no candidates", Request{}, "fairrank: no candidates", nil},
		{"empty ID", Request{Candidates: []Candidate{{ID: "", Score: 1, Group: "g"}}}, "fairrank: candidate 0 has empty ID", nil},
		{"duplicate ID", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g"}, {ID: "x", Score: 1, Group: "h"},
		}}, `fairrank: duplicate candidate ID "x"`, nil},
		{"NaN score", Request{Candidates: []Candidate{
			{ID: "x", Score: math.NaN(), Group: "g"}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" has NaN score`, nil},
		{"empty group", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: ""}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" has empty Group`, nil},
		{"membership empty group name", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g", Membership: map[string]float64{"": 1}}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" membership names an empty group`, nil},
		{"membership NaN", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g", Membership: map[string]float64{"g": math.NaN()}}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" membership for group "g" is NaN, want in [0,1]`, nil},
		{"membership negative", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g", Membership: map[string]float64{"g": -0.25}}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" membership for group "g" is -0.25, want in [0,1]`, nil},
		{"membership above one", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g", Membership: map[string]float64{"g": 1.5}}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" membership for group "g" is 1.5, want in [0,1]`, nil},
		{"membership not normalized", Request{Candidates: []Candidate{
			{ID: "x", Score: 2, Group: "g", Membership: map[string]float64{"g": 0.5, "h": 0.3}}, {ID: "y", Score: 1, Group: "h"},
		}}, `fairrank: candidate "x" membership sums to 0.8, want 1`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := r.Do(context.Background(), tc.req)
			if err == nil {
				t.Fatal("request accepted")
			}
			if got := err.Error(); got != tc.want {
				t.Errorf("error = %q, want exactly %q", got, tc.want)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Errorf("error %v does not wrap the %v sentinel", err, tc.is)
			}
		})
	}
}

// TestOversizedTopKClampsNotRejects documents the one boundary that is
// deliberately NOT an error: a top-k beyond the pool size clamps to the
// full ranking.
func TestOversizedTopKClampsNotRejects(t *testing.T) {
	r, err := NewRanker(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool(6)
	res, err := r.Do(context.Background(), Request{Candidates: cands, TopK: iptr(1000)})
	if err != nil {
		t.Fatalf("oversized top-k rejected: %v", err)
	}
	if len(res.Ranking) != len(cands) || res.Diagnostics.TopK != len(cands) {
		t.Fatalf("oversized top-k returned %d of %d (diag %d), want the clamped full ranking",
			len(res.Ranking), len(cands), res.Diagnostics.TopK)
	}
}
