// Quickstart: post-process a small candidate ranking with Mallows noise
// and inspect the fairness/quality trade-off.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fairrank "repro"
)

func main() {
	// Eight candidates; the score model favours group "m" (the paper's
	// motivating bias), so the score order under-represents group "f" in
	// every short prefix.
	candidates := []fairrank.Candidate{
		{ID: "ava", Score: 5.2, Group: "f"},
		{ID: "bea", Score: 5.1, Group: "f"},
		{ID: "cleo", Score: 4.8, Group: "f"},
		{ID: "dina", Score: 4.2, Group: "f"},
		{ID: "emil", Score: 9.9, Group: "m"},
		{ID: "finn", Score: 9.5, Group: "m"},
		{ID: "gus", Score: 9.1, Group: "m"},
		{ID: "hank", Score: 8.8, Group: "m"},
	}

	byScore, err := fairrank.Rank(candidates, fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted})
	if err != nil {
		log.Fatal(err)
	}
	show("score order (no fairness)", byScore)

	// Algorithm 1 of the paper: weakly fair central ranking + best of 15
	// Mallows samples by NDCG. Note that the randomization itself never
	// reads the Group attribute.
	fair, err := fairrank.Rank(candidates, fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Theta:     2,
		Samples:   15,
		Central:   fairrank.CentralFairDCG, // noise around the fair optimum
		Criterion: fairrank.CriterionKT,    // stay near that fair central
		Tolerance: 0.15,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	show("mallows best-of-15 around the fair optimum (θ=2)", fair)
}

func show(title string, ranked []fairrank.Candidate) {
	fmt.Printf("%s:\n", title)
	for i, c := range ranked {
		fmt.Printf("  %d. %-5s score=%.1f group=%s\n", i+1, c.ID, c.Score, c.Group)
	}
	ndcg, err := fairrank.NDCG(ranked)
	if err != nil {
		log.Fatal(err)
	}
	pp, err := fairrank.PPfairTopK(ranked, 4, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  NDCG = %.4f   P-fair positions in the top 4 = %.0f%%\n\n", ndcg, pp)
}
