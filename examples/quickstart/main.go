// Quickstart: post-process a small candidate ranking with Mallows noise
// through the Request/Result API and inspect the fairness/quality
// trade-off from the per-response diagnostics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	fairrank "repro"
)

func main() {
	// Eight candidates; the score model favours group "m" (the paper's
	// motivating bias), so the score order under-represents group "f" in
	// every short prefix.
	candidates := []fairrank.Candidate{
		{ID: "ava", Score: 5.2, Group: "f"},
		{ID: "bea", Score: 5.1, Group: "f"},
		{ID: "cleo", Score: 4.8, Group: "f"},
		{ID: "dina", Score: 4.2, Group: "f"},
		{ID: "emil", Score: 9.9, Group: "m"},
		{ID: "finn", Score: 9.5, Group: "m"},
		{ID: "gus", Score: 9.1, Group: "m"},
		{ID: "hank", Score: 8.8, Group: "m"},
	}

	// One engine serves every request; θ, samples, criterion, and
	// tolerance are per-request knobs. The Mallows mechanism itself
	// never reads the Group attribute.
	ranker, err := fairrank.NewRanker(fairrank.Config{
		Algorithm: fairrank.AlgorithmMallowsBest,
		Central:   fairrank.CentralFairDCG, // noise around the fair optimum
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	theta2, theta0 := 2.0, 0.0
	samples, tol := 15, 0.15
	seed := int64(42)

	// Algorithm 1 of the paper: best of 15 Mallows samples, staying
	// near the fair central.
	fair, err := ranker.Do(ctx, fairrank.Request{
		Candidates: candidates,
		Theta:      &theta2,
		Samples:    &samples,
		Criterion:  fairrank.CriterionKT,
		Tolerance:  &tol,
		Seed:       &seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	show("mallows best-of-15 around the fair optimum (θ=2)", fair)

	// θ = 0 is a real value in the Request API: pure uniform noise, the
	// maximum-robustness end of the dispersion trade-off. Same engine,
	// same amortized caches.
	uniform, err := ranker.Do(ctx, fairrank.Request{
		Candidates: candidates,
		Theta:      &theta0,
		Samples:    &samples,
		Criterion:  fairrank.CriterionKT,
		Tolerance:  &tol,
		Seed:       &seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	show("uniform noise (θ=0), best of 15", uniform)
}

func show(title string, res *fairrank.Result) {
	fmt.Printf("%s:\n", title)
	for i, c := range res.Ranking {
		fmt.Printf("  %d. %-5s score=%.1f group=%s\n", i+1, c.ID, c.Score, c.Group)
	}
	d := res.Diagnostics
	fmt.Printf("  NDCG = %.4f   KT to central = %d   P-fair positions = %.0f%%\n\n",
		d.NDCG, d.CentralKendallTau, d.PPfair)
}
