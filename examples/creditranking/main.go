// Credit ranking on the German Credit dataset: the paper's §V-C
// scenario end to end. Applicants are ranked by credit amount under
// representation constraints on the known Age–Sex attribute, and the
// result is audited against the Housing attribute, which no algorithm
// was allowed to see — the paper's "unknown protected attribute".
//
// Run with:
//
//	go run ./examples/creditranking
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
	"repro/internal/dataset"
)

const (
	rankingSize = 50
	tolerance   = 0.1
)

func main() {
	// Synthetic German Credit: Table I joint distribution, lognormal
	// credit amounts (see DESIGN.md for the substitution rationale).
	ds := dataset.SyntheticGermanCredit(rand.New(rand.NewSource(1)))
	top, err := ds.TopByAmount(rankingSize)
	if err != nil {
		log.Fatal(err)
	}
	pool := make([]fairrank.Candidate, top.Len())
	for i, r := range top.Records {
		pool[i] = fairrank.Candidate{
			ID:    fmt.Sprintf("applicant-%03d", r.ID),
			Score: r.CreditAmount,
			Group: r.AgeSex.String(),
			Attrs: map[string]string{"housing": r.Housing.String()},
		}
	}

	fmt.Printf("ranking %d applicants, constraints on Age-Sex, audit on Housing\n\n", rankingSize)
	fmt.Printf("%-22s  %-7s  %-14s  %s\n", "algorithm", "NDCG", "PPfair(known)", "PPfair(housing, unseen)")
	configs := []struct {
		name string
		cfg  fairrank.Config
	}{
		{"score order", fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted}},
		{"detconstsort", fairrank.Config{Algorithm: fairrank.AlgorithmDetConstSort, Tolerance: tolerance}},
		{"detconstsort σ=1", fairrank.Config{Algorithm: fairrank.AlgorithmDetConstSort, Tolerance: tolerance, Sigma: 1, Seed: 3}},
		{"ilp (dcg-optimal)", fairrank.Config{Algorithm: fairrank.AlgorithmILP, Tolerance: tolerance}},
		{"mallows best-of-15", fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Theta: 1, Samples: 15, Tolerance: tolerance, Seed: 3}},
	}
	ctx := context.Background()
	for _, c := range configs {
		// One reusable Ranker per configuration; the Result's self-audit
		// already carries NDCG and PPfair on the known attribute, so only
		// the withheld-attribute audit runs on the returned ranking.
		ranker, err := fairrank.NewRanker(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ranker.Do(ctx, fairrank.Request{Candidates: pool})
		if err != nil {
			log.Fatal(err)
		}
		ppHidden, err := fairrank.PPfairByAttr(res.Ranking, "housing", tolerance)
		if err != nil {
			log.Fatal(err)
		}
		d := res.Diagnostics
		fmt.Printf("%-22s  %-7.4f  %-14.1f  %.1f\n", c.name, d.NDCG, d.PPfair, ppHidden)
	}
	fmt.Println("\nThe Mallows mechanism never read either attribute; its fairness")
	fmt.Println("on Housing is a property of the randomization, not of constraints.")
}
