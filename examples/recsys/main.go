// Recommender-feed balancing: items from three content providers are
// ranked by predicted engagement, and the platform owes each provider
// proportional exposure (the multi-valued attribute case). A second
// attribute — whether an item is fresh or catalog content — was never
// modelled, but regulators may audit it later.
//
// The example post-processes the feed with each algorithm through the
// Request/Result API — one reusable Ranker per configuration, NDCG read
// from the result's self-audit — and audits both attributes,
// illustrating the paper's robustness claim on an attribute that was
// unknown at ranking time. The last arm swaps the Mallows mechanism for
// Plackett–Luce noise (the paper's §VI direction) with a one-field
// config change.
//
// Run with:
//
//	go run ./examples/recsys
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
)

const (
	feedLen   = 60
	foldLen   = 15 // items above the fold: what the audit cares about
	tolerance = 0.12
)

func main() {
	rng := rand.New(rand.NewSource(21))
	providers := []string{"indie", "network", "studio"}
	items := make([]fairrank.Candidate, feedLen)
	for i := range items {
		provider := providers[i%len(providers)]
		// Engagement predictions favour big-studio content; fresh items
		// skew toward the studio too, entangling the two attributes.
		score := rng.Float64()
		freshness := "catalog"
		switch provider {
		case "studio":
			score += 0.8
			if rng.Float64() < 0.6 {
				freshness = "fresh"
			}
		case "network":
			score += 0.4
			if rng.Float64() < 0.3 {
				freshness = "fresh"
			}
		default:
			if rng.Float64() < 0.2 {
				freshness = "fresh"
			}
		}
		items[i] = fairrank.Candidate{
			ID:    fmt.Sprintf("item-%02d", i),
			Score: score,
			Group: provider,
			Attrs: map[string]string{"freshness": freshness},
		}
	}

	configs := []struct {
		name string
		cfg  fairrank.Config
	}{
		{"engagement order", fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted}},
		{"detconstsort", fairrank.Config{Algorithm: fairrank.AlgorithmDetConstSort, Tolerance: tolerance}},
		{"approx-ipf", fairrank.Config{Algorithm: fairrank.AlgorithmIPF, Tolerance: tolerance}},
		{"ilp", fairrank.Config{Algorithm: fairrank.AlgorithmILP, Tolerance: tolerance}},
		{"mallows weak central", fairrank.Config{Algorithm: fairrank.AlgorithmMallows, Theta: 0.5, Tolerance: tolerance, WeakK: foldLen, Seed: 9}},
		{"mallows fair central", fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Theta: 2, Samples: 15, Central: fairrank.CentralFairDCG, Criterion: fairrank.CriterionKT, Tolerance: tolerance, Seed: 9}},
		// Same best-of loop, different randomization: Plackett–Luce
		// noise instead of Mallows, selected by one config field.
		{"pl-noise fair central", fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Noise: fairrank.NoisePlackettLuce, Theta: 0.2, Samples: 15, Central: fairrank.CentralFairDCG, Criterion: fairrank.CriterionKT, Tolerance: tolerance, Seed: 9}},
	}

	ctx := context.Background()
	fmt.Printf("%-22s  %-7s  %-20s  %s\n", "algorithm", "NDCG", "PPfair@15(provider)", "PPfair(freshness, unseen)")
	for _, c := range configs {
		ranker, err := fairrank.NewRanker(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ranker.Do(ctx, fairrank.Request{Candidates: items})
		if err != nil {
			log.Fatal(err)
		}
		// NDCG comes from the result's self-audit; the provider audit is
		// scoped to the fold and the freshness audit needs the full feed,
		// so both run on the returned ranking.
		ppProvider, err := fairrank.PPfairTopK(res.Ranking, foldLen, tolerance)
		if err != nil {
			log.Fatal(err)
		}
		ppFresh, err := fairrank.PPfairByAttr(res.Ranking, "freshness", tolerance)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s  %-7.4f  %-20.1f  %.1f\n", c.name, res.Diagnostics.NDCG, ppProvider, ppFresh)
	}
}
