// Committee ranking from votes: a hiring committee of nine members each
// ranks twelve internal candidates; the ballots are aggregated into a
// consensus ranking (Kemeny / footrule / Borda) which then serves as the
// central ranking of the Mallows mechanism — exactly the "result of a
// rank aggregation problem" the paper names as a natural central (§IV-A).
//
// This example drives the lower-level internal API directly (the
// aggregation step sits below the candidate-oriented facade).
//
// Run with:
//
//	go run ./examples/committee
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/mallows"
	"repro/internal/perm"
	"repro/internal/rankdist"
)

const (
	numCandidates = 12
	numVoters     = 9
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// Ballots: noisy views of a common underlying preference — i.e.,
	// Mallows samples around a ground-truth ranking.
	truth := perm.Random(numCandidates, rng)
	model, err := mallows.New(truth, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	votes := model.SampleN(numVoters, rng)

	// Aggregate the ballots three ways.
	kemeny, kemenyCost, err := aggregate.KemenyExact(votes)
	if err != nil {
		log.Fatal(err)
	}
	footrule, _, err := aggregate.Footrule(votes)
	if err != nil {
		log.Fatal(err)
	}
	borda, err := aggregate.Borda(votes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ballots aggregated over", numVoters, "voters:")
	report := func(name string, p perm.Perm) {
		cost, err := aggregate.KemenyCost(p, votes)
		if err != nil {
			log.Fatal(err)
		}
		d, err := rankdist.KendallTau(p, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %v  total-KT-to-ballots=%d  KT-to-truth=%d\n", name, p, cost, d)
	}
	report("kemeny", kemeny)
	report("footrule", footrule)
	report("borda", borda)
	fmt.Printf("  (kemeny optimum cost: %d)\n\n", kemenyCost)

	// The candidates split into two seniority cohorts; the committee
	// wants the final shortlist order not to bury either cohort, without
	// recording anyone's cohort in the decision pipeline: post-process
	// the Kemeny consensus with Mallows noise.
	cohort := make([]int, numCandidates)
	for i := range cohort {
		cohort[i] = i % 2
	}
	gr := fairness.MustGroups(cohort, 2)
	cons, err := fairness.Proportional(gr, 0.15)
	if err != nil {
		log.Fatal(err)
	}

	theta, err := core.CalibrateTheta(numCandidates, 6) // ≈6 discordant pairs of reshuffling
	if err != nil {
		log.Fatal(err)
	}
	final, err := core.PostProcess(kemeny, core.Config{
		Theta:     theta,
		Samples:   15,
		Criterion: core.KTCriterion{Reference: kemeny},
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	iiBefore, err := fairness.TwoSidedInfeasibleIndex(kemeny, gr, cons)
	if err != nil {
		log.Fatal(err)
	}
	iiAfter, err := fairness.TwoSidedInfeasibleIndex(final, gr, cons)
	if err != nil {
		log.Fatal(err)
	}
	d, err := rankdist.KendallTau(final, kemeny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mallows post-processing (θ calibrated to %.3f):\n", theta)
	fmt.Printf("  consensus: %v  infeasible-index=%d\n", kemeny, iiBefore)
	fmt.Printf("  final:     %v  infeasible-index=%d  KT-to-consensus=%d\n", final, iiAfter, d)
}
