// HR shortlisting: the paper's motivating scenario. A recruiter gets 120
// applications and an automated ranker shortlists the top 10 for the
// hiring manager. Screening scores carry a group bias, and — as in most
// real pipelines — the protected attribute may not even be collectable.
//
// The example compares the score order, the attribute-aware baselines
// (DetConstSort, ApproxMultiValuedIPF, the DCG-optimal ILP ranking), and
// the attribute-blind Mallows mechanism on shortlist fairness and
// ranking quality.
//
// Run with:
//
//	go run ./examples/hrshortlist
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
)

const (
	applicants   = 120
	shortlistLen = 10
	tolerance    = 0.1
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pool := make([]fairrank.Candidate, applicants)
	for i := range pool {
		group := "women"
		bias := 0.0
		if i%3 != 0 { // two thirds of the pool
			group = "men"
			bias = 1.2 // systematically inflated screening scores
		}
		pool[i] = fairrank.Candidate{
			ID:    fmt.Sprintf("applicant-%03d", i),
			Score: rng.NormFloat64() + 5 + bias,
			Group: group,
		}
	}

	configs := []struct {
		name string
		cfg  fairrank.Config
	}{
		{"score order", fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted}},
		{"detconstsort", fairrank.Config{Algorithm: fairrank.AlgorithmDetConstSort, Tolerance: tolerance}},
		{"approx-ipf", fairrank.Config{Algorithm: fairrank.AlgorithmIPF, Tolerance: tolerance}},
		{"ilp (dcg-optimal)", fairrank.Config{Algorithm: fairrank.AlgorithmILP, Tolerance: tolerance}},
		{"mallows weak central", fairrank.Config{Algorithm: fairrank.AlgorithmMallows, Theta: 1, Tolerance: tolerance, WeakK: shortlistLen, Seed: 11}},
		{"mallows fair central", fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Theta: 2, Samples: 15, Central: fairrank.CentralFairDCG, Criterion: fairrank.CriterionKT, Tolerance: tolerance, Seed: 11}},
	}

	fmt.Printf("%-20s  %-7s  %-10s  %s\n", "algorithm", "NDCG", "PPfair@10", "women in top-10")
	for _, c := range configs {
		ranked, err := fairrank.Rank(pool, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		ndcg, err := fairrank.NDCG(ranked)
		if err != nil {
			log.Fatal(err)
		}
		pp, err := fairrank.PPfairTopK(ranked, shortlistLen, tolerance)
		if err != nil {
			log.Fatal(err)
		}
		women := 0
		for _, cand := range ranked[:shortlistLen] {
			if cand.Group == "women" {
				women++
			}
		}
		fmt.Printf("%-20s  %-7.4f  %-10.1f  %d/%d\n", c.name, ndcg, pp, women, shortlistLen)
	}
	fmt.Println("\nPool is one-third women; a fair shortlist carries ≈3.")
}
