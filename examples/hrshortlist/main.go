// HR shortlisting: the paper's motivating scenario. A recruiter gets 120
// applications and an automated ranker shortlists the top 10 for the
// hiring manager. Screening scores carry a group bias, and — as in most
// real pipelines — the protected attribute may not even be collectable.
//
// The example compares the score order, the attribute-aware baselines
// (DetConstSort, ApproxMultiValuedIPF, the DCG-optimal ILP ranking), and
// the attribute-blind Mallows mechanism on shortlist fairness and
// ranking quality. Each request asks for TopK = 10, so the engine
// returns exactly the shortlist and its diagnostics audit exactly the
// delivered prefix — no separate metric pass.
//
// Run with:
//
//	go run ./examples/hrshortlist
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	fairrank "repro"
)

const (
	applicants   = 120
	shortlistLen = 10
	tolerance    = 0.1
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pool := make([]fairrank.Candidate, applicants)
	for i := range pool {
		group := "women"
		bias := 0.0
		if i%3 != 0 { // two thirds of the pool
			group = "men"
			bias = 1.2 // systematically inflated screening scores
		}
		pool[i] = fairrank.Candidate{
			ID:    fmt.Sprintf("applicant-%03d", i),
			Score: rng.NormFloat64() + 5 + bias,
			Group: group,
		}
	}

	theta1, theta2 := 1.0, 2.0
	samples := 15
	configs := []struct {
		name string
		cfg  fairrank.Config
		req  fairrank.Request
	}{
		{"score order", fairrank.Config{Algorithm: fairrank.AlgorithmScoreSorted}, fairrank.Request{}},
		{"detconstsort", fairrank.Config{Algorithm: fairrank.AlgorithmDetConstSort}, fairrank.Request{}},
		{"approx-ipf", fairrank.Config{Algorithm: fairrank.AlgorithmIPF}, fairrank.Request{}},
		{"ilp (dcg-optimal)", fairrank.Config{Algorithm: fairrank.AlgorithmILP}, fairrank.Request{}},
		{"mallows weak central",
			fairrank.Config{Algorithm: fairrank.AlgorithmMallows, WeakK: shortlistLen},
			fairrank.Request{Theta: &theta1}},
		{"mallows fair central",
			fairrank.Config{Algorithm: fairrank.AlgorithmMallowsBest, Central: fairrank.CentralFairDCG},
			fairrank.Request{Theta: &theta2, Samples: &samples, Criterion: fairrank.CriterionKT}},
	}

	ctx := context.Background()
	tol := tolerance
	topK := shortlistLen
	seed := int64(11)
	fmt.Printf("%-20s  %-7s  %-10s  %s\n", "algorithm", "NDCG", "PPfair@10", "women in top-10")
	for _, c := range configs {
		ranker, err := fairrank.NewRanker(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		req := c.req
		req.Candidates = pool
		req.Tolerance = &tol
		req.TopK = &topK
		req.Seed = &seed
		res, err := ranker.Do(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		women := 0
		for _, cand := range res.Ranking {
			if cand.Group == "women" {
				women++
			}
		}
		d := res.Diagnostics
		fmt.Printf("%-20s  %-7.4f  %-10.1f  %d/%d\n", c.name, d.NDCG, d.PPfair, women, shortlistLen)
	}
	fmt.Println("\nPool is one-third women; a fair shortlist carries ≈3.")
}
